"""Module plumbing, Linear/BatchNorm layers, and optimizers."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import BatchNorm1d, Linear, Module
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def test_linear_shapes_and_bias():
    layer = Linear(4, 3, rng=0)
    out = layer(Tensor(np.ones((5, 4))))
    assert out.shape == (5, 3)
    assert layer.bias is not None
    no_bias = Linear(4, 3, bias=False, rng=0)
    assert no_bias.bias is None


def test_named_parameters_nested():
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.fc1 = Linear(2, 2, rng=0)
            self.blocks = [Linear(2, 2, rng=1), Linear(2, 2, rng=2)]

    names = dict(Net().named_parameters())
    assert "fc1.weight" in names
    assert "blocks.0.weight" in names
    assert "blocks.1.bias" in names
    assert len(Net().parameters()) == 6


def test_state_dict_roundtrip():
    a = Linear(3, 3, rng=0)
    b = Linear(3, 3, rng=99)
    b.load_state_dict(a.state_dict())
    assert np.array_equal(a.weight.data, b.weight.data)


def test_load_state_dict_rejects_unknown_and_mismatch():
    layer = Linear(3, 3, rng=0)
    with pytest.raises(KeyError):
        layer.load_state_dict({"nope": np.zeros((3, 3))})
    with pytest.raises(ValueError):
        layer.load_state_dict({"weight": np.zeros((2, 2))})


def test_train_eval_mode_propagates():
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.inner = Linear(2, 2, rng=0)

    net = Net()
    net.eval()
    assert not net.training and not net.inner.training
    net.train()
    assert net.training and net.inner.training


def test_batchnorm_normalizes_training_batch(rng):
    bn = BatchNorm1d(4)
    x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(200, 4)))
    out = bn(x)
    assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-6)
    assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_eval_uses_running_stats(rng):
    bn = BatchNorm1d(2)
    for _ in range(50):
        bn(Tensor(rng.normal(loc=2.0, size=(64, 2))))
    bn.training = False
    out = bn(Tensor(np.full((4, 2), 2.0)))
    assert np.allclose(out.data, 0.0, atol=0.3)


def _quadratic_problem():
    # minimize ||w - 3||^2
    w = Tensor(np.zeros(4), requires_grad=True)
    target = Tensor(np.full(4, 3.0))

    def loss():
        diff = w + (-target)
        return (diff * diff).sum()

    return w, loss


def test_sgd_converges():
    w, loss = _quadratic_problem()
    opt = SGD([w], lr=0.1)
    for _ in range(100):
        opt.zero_grad()
        loss().backward()
        opt.step()
    assert np.allclose(w.data, 3.0, atol=1e-3)


def test_adam_converges():
    w, loss = _quadratic_problem()
    opt = Adam([w], lr=0.2)
    for _ in range(200):
        opt.zero_grad()
        loss().backward()
        opt.step()
    assert np.allclose(w.data, 3.0, atol=1e-2)


def test_weight_decay_shrinks_weights():
    w = Tensor(np.full(3, 10.0), requires_grad=True)
    opt = SGD([w], lr=0.1, weight_decay=0.5)
    opt.zero_grad()
    (w * Tensor(np.zeros(3))).sum().backward()  # zero task gradient
    opt.step()
    assert np.all(np.abs(w.data) < 10.0)


def test_optimizer_rejects_empty_params():
    with pytest.raises(ValueError):
        SGD([Tensor(np.zeros(2))])  # not trainable


def test_optimizer_skips_params_without_grad():
    w = Tensor(np.ones(2), requires_grad=True)
    opt = Adam([w])
    opt.step()  # no gradient accumulated: must not crash or update
    assert np.array_equal(w.data, [1.0, 1.0])
