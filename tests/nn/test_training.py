"""The training loop: learning actually happens, callbacks, best-state."""

import numpy as np
import pytest

from repro.nn import accuracy, build_model, train_model
from repro.nn.models.base import GraphOps


def test_gcn_learns_tiny_graph(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    result = train_model(model, tiny_graph, epochs=40)
    assert result.test_accuracy > 0.6  # communities are learnable
    assert result.train_losses[-1] < result.train_losses[0]


def test_train_tracks_best_epoch(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    result = train_model(model, tiny_graph, epochs=15)
    assert 0 <= result.best_epoch < 15
    assert len(result.val_accuracies) == result.epochs_run


def test_callback_stops_training(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)

    def stop_at_5(epoch, m, acc):
        return epoch >= 5

    result = train_model(model, tiny_graph, epochs=50, epoch_callback=stop_at_5)
    assert result.epochs_run == 6


def test_best_state_restored(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    result = train_model(model, tiny_graph, epochs=20, track_best=True)
    ops = GraphOps(tiny_graph.adj)
    restored_acc = accuracy(model, tiny_graph, ops, tiny_graph.val_mask)
    assert restored_acc == pytest.approx(
        result.val_accuracies[result.best_epoch], abs=1e-9
    )


def test_accuracy_empty_mask_is_zero(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    ops = GraphOps(tiny_graph.adj)
    assert accuracy(model, tiny_graph, ops,
                    np.zeros(tiny_graph.num_nodes, dtype=bool)) == 0.0


def test_training_is_deterministic(tiny_graph):
    r1 = train_model(build_model("gcn", tiny_graph, rng=3), tiny_graph, epochs=10)
    r2 = train_model(build_model("gcn", tiny_graph, rng=3), tiny_graph, epochs=10)
    assert r1.train_losses == r2.train_losses
