"""The five Tab. IV models: shapes, gradients, trainable-adjacency mode."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.models import (
    GAT,
    GCN,
    GIN,
    GraphSAGE,
    MODEL_ARCHS,
    ResGCN,
    build_model,
    hidden_dim_for,
    sample_neighbors,
)
from repro.nn.models.base import GraphOps
from repro.nn.tensor import Tensor


@pytest.fixture()
def ops(tiny_graph):
    return GraphOps(tiny_graph.adj)


@pytest.fixture()
def x(tiny_graph):
    return Tensor(tiny_graph.features)


@pytest.mark.parametrize("arch", MODEL_ARCHS)
def test_forward_shapes(arch, tiny_graph, ops, x):
    kwargs = {"num_layers": 3} if arch == "resgcn" else {}
    model = build_model(arch, tiny_graph, rng=0, **kwargs)
    logits = model(x, ops)
    assert logits.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)


@pytest.mark.parametrize("arch", MODEL_ARCHS)
def test_backward_reaches_all_parameters(arch, tiny_graph, ops, x):
    kwargs = {"num_layers": 2} if arch == "resgcn" else {}
    model = build_model(arch, tiny_graph, rng=0, **kwargs)
    model.eval()  # disable dropout so every path is active
    logits = model(x, ops)
    loss = F.cross_entropy(logits, tiny_graph.labels, tiny_graph.train_mask)
    loss.backward()
    for name, p in model.named_parameters():
        assert p.grad is not None, f"no gradient for {name}"


def test_gcn_matches_equation_one(tiny_graph):
    # With dropout off, a 2-layer GCN is softmax(Â relu(Â X W0 + b0) W1 + b1).
    model = GCN(tiny_graph.num_features, 8, tiny_graph.num_classes, rng=0)
    model.eval()
    ops = GraphOps(tiny_graph.adj)
    logits = model(Tensor(tiny_graph.features), ops)

    from repro.graphs import symmetric_normalize

    a_hat = symmetric_normalize(tiny_graph.adj).toarray()
    h = a_hat @ (
        tiny_graph.features @ model.layers[0].weight.data
        + model.layers[0].bias.data
    )
    h = np.maximum(h, 0.0)
    expected = a_hat @ (h @ model.layers[1].weight.data + model.layers[1].bias.data)
    np.testing.assert_allclose(logits.data, expected, atol=1e-9)


def test_hidden_dim_convention():
    assert hidden_dim_for("cora") == 16
    assert hidden_dim_for("reddit") == 64


def test_build_model_rejects_unknown(tiny_graph):
    with pytest.raises(ValueError):
        build_model("transformer", tiny_graph)


def test_gat_attention_rows_normalize(tiny_graph, x):
    model = GAT(tiny_graph.num_features, 4, tiny_graph.num_classes, heads=2, rng=0)
    model.eval()
    logits = model(x, GraphOps(tiny_graph.adj))
    assert np.all(np.isfinite(logits.data))


def test_sage_sampling_caps_degree(tiny_graph, rng):
    sampled = sample_neighbors(tiny_graph.adj, max_neighbors=3, rng=rng)
    assert sampled.shape == tiny_graph.adj.shape
    per_row = np.diff(sampled.indptr)
    assert per_row.max() <= 3
    # Sampled edges are a subset of real edges.
    diff = sampled.multiply(tiny_graph.adj) - sampled
    assert abs(diff).sum() == 0


def test_sage_eval_uses_full_graph(tiny_graph, x):
    model = GraphSAGE(tiny_graph.num_features, 8, tiny_graph.num_classes, rng=0)
    model.eval()
    a = model(x, GraphOps(tiny_graph.adj)).data
    b = model(x, GraphOps(tiny_graph.adj)).data
    np.testing.assert_allclose(a, b)  # deterministic without sampling


def test_resgcn_depth(tiny_graph):
    model = ResGCN(tiny_graph.num_features, 16, tiny_graph.num_classes,
                   num_layers=5, rng=0)
    assert model.num_layers == 5


def test_trainable_ops_matches_constant_at_unit_weights(tiny_graph, x):
    # GraphOps with all-ones edge weights must reproduce the constant path.
    model = GCN(tiny_graph.num_features, 8, tiny_graph.num_classes, rng=0)
    model.eval()
    const_ops = GraphOps(tiny_graph.adj)
    weights = Tensor(np.ones(tiny_graph.adj.nnz), requires_grad=True)
    train_ops = GraphOps(tiny_graph.adj, edge_weights=weights)
    a = model(x, const_ops).data
    b = model(x, train_ops).data
    np.testing.assert_allclose(a, b, atol=1e-9)


def test_trainable_ops_routes_gradients_to_edges(tiny_graph, x):
    model = GCN(tiny_graph.num_features, 8, tiny_graph.num_classes, rng=0)
    model.eval()
    weights = Tensor(np.ones(tiny_graph.adj.nnz), requires_grad=True)
    ops = GraphOps(tiny_graph.adj, edge_weights=weights)
    loss = F.cross_entropy(
        model(x, ops), tiny_graph.labels, tiny_graph.train_mask
    )
    loss.backward()
    assert weights.grad is not None
    assert np.any(weights.grad != 0.0)


def test_graphops_rejects_wrong_weight_count(tiny_graph):
    with pytest.raises(ValueError):
        GraphOps(tiny_graph.adj, edge_weights=Tensor(np.ones(3), requires_grad=True))


def test_agg_variants_match_references(tiny_graph, rng):
    ops = GraphOps(tiny_graph.adj)
    x = Tensor(rng.normal(size=(tiny_graph.num_nodes, 6)))
    # Sum aggregation == A @ x
    np.testing.assert_allclose(
        ops.agg_sum(x).data, tiny_graph.adj @ x.data, atol=1e-9
    )
    # Mean aggregation rows average neighbour features.
    from repro.graphs import row_normalize

    np.testing.assert_allclose(
        ops.agg_mean(x).data,
        row_normalize(tiny_graph.adj, self_loops=False) @ x.data,
        atol=1e-9,
    )
