"""Reordering baselines (Sec. II comparison points)."""

import numpy as np

from repro.algorithm.admm import polarization_loss
from repro.graphs.reorder import (
    REORDERING_BASELINES,
    bfs_community_permutation,
    degree_sort_permutation,
    permute_graph,
)


def test_baseline_registry():
    assert set(REORDERING_BASELINES) == {"rcm", "degree-sort", "bfs-community"}


def test_degree_sort_orders_by_degree(small_graph):
    perm = degree_sort_permutation(small_graph)
    degrees = small_graph.degrees()[perm]
    assert np.all(np.diff(degrees) <= 0)  # descending


def test_degree_sort_ascending(small_graph):
    perm = degree_sort_permutation(small_graph, descending=False)
    degrees = small_graph.degrees()[perm]
    assert np.all(np.diff(degrees) >= 0)


def test_bfs_permutation_is_valid(small_graph):
    perm = bfs_community_permutation(small_graph)
    assert np.array_equal(np.sort(perm), np.arange(small_graph.num_nodes))


def test_bfs_improves_polarization(small_graph):
    # BFS locality ordering must bring edges nearer the diagonal than a
    # random order (the whole point of reordering baselines).
    rng = np.random.default_rng(0)
    random_order = permute_graph(small_graph, rng.permutation(small_graph.num_nodes))
    bfs_order = permute_graph(small_graph, bfs_community_permutation(small_graph))
    assert polarization_loss(bfs_order.adj) < polarization_loss(random_order.adj)


def test_all_baselines_preserve_structure(small_graph):
    for name, fn in REORDERING_BASELINES.items():
        perm = fn(small_graph)
        reordered = permute_graph(small_graph, perm)
        assert reordered.num_edges == small_graph.num_edges, name
        assert sorted(reordered.degrees()) == sorted(small_graph.degrees()), name
