"""Graph statistics and reordering utilities."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graphs import compute_stats, permute_graph, rcm_permutation
from repro.graphs.reorder import check_permutation, identity_permutation
from repro.graphs.stats import gini


def test_gini_of_uniform_is_zero():
    assert gini(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)


def test_gini_of_concentrated_is_high():
    values = np.zeros(100)
    values[0] = 100.0
    assert gini(values) > 0.9


def test_gini_empty_and_zero():
    assert gini(np.array([])) == 0.0
    assert gini(np.zeros(10)) == 0.0


def test_compute_stats_fields(tiny_graph):
    stats = compute_stats(tiny_graph)
    assert stats.nodes == tiny_graph.num_nodes
    assert stats.edges == tiny_graph.num_edges
    assert 0.0 < stats.sparsity < 1.0
    assert stats.max_degree >= stats.avg_degree
    assert len(stats.as_row()) == 9


def test_identity_permutation():
    assert np.array_equal(identity_permutation(4), [0, 1, 2, 3])


def test_check_permutation_rejects_bad():
    with pytest.raises(PartitionError):
        check_permutation(np.array([0, 0, 1]), 3)
    with pytest.raises(PartitionError):
        check_permutation(np.array([0, 1]), 3)


def test_permute_graph_preserves_structure(tiny_graph, rng):
    perm = rng.permutation(tiny_graph.num_nodes)
    permuted = permute_graph(tiny_graph, perm)
    # Degree multiset, labels multiset, and edge count are invariant.
    assert sorted(permuted.degrees()) == sorted(tiny_graph.degrees())
    assert permuted.num_edges == tiny_graph.num_edges
    assert np.array_equal(permuted.labels, tiny_graph.labels[perm])
    assert np.array_equal(permuted.features, tiny_graph.features[perm])


def test_permute_graph_adjacency_consistent(tiny_graph, rng):
    perm = rng.permutation(tiny_graph.num_nodes)
    permuted = permute_graph(tiny_graph, perm)
    dense = tiny_graph.adj.toarray()
    np.testing.assert_array_equal(
        permuted.adj.toarray(), dense[np.ix_(perm, perm)]
    )


def test_permute_records_composition(tiny_graph, rng):
    perm1 = rng.permutation(tiny_graph.num_nodes)
    perm2 = rng.permutation(tiny_graph.num_nodes)
    once = permute_graph(tiny_graph, perm1)
    twice = permute_graph(once, perm2)
    recorded = twice.meta["permutation"]
    np.testing.assert_array_equal(
        twice.adj.toarray(),
        tiny_graph.adj.toarray()[np.ix_(recorded, recorded)],
    )


def test_rcm_reduces_bandwidth(small_graph):
    perm = rcm_permutation(small_graph)
    reordered = permute_graph(small_graph, perm)

    def bandwidth(adj):
        coo = adj.tocoo()
        return int(np.abs(coo.row - coo.col).max()) if coo.nnz else 0

    assert bandwidth(reordered.adj) <= bandwidth(small_graph.adj)
