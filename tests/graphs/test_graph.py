"""Unit tests for the Graph container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.graphs import Graph


def _make(n=5):
    adj = sp.csr_matrix(
        (np.ones(4), ([0, 1, 1, 2], [1, 0, 2, 1])), shape=(n, n)
    )
    return Graph(
        adj=adj,
        features=np.eye(n, 3),
        labels=np.arange(n) % 2,
        train_mask=np.array([True] * 2 + [False] * (n - 2)),
        val_mask=np.zeros(n, dtype=bool),
        test_mask=np.zeros(n, dtype=bool),
        name="t",
    )


def test_basic_counts():
    g = _make()
    assert g.num_nodes == 5
    assert g.num_edges == 2  # 4 stored nnz / 2
    assert g.num_features == 3
    assert g.num_classes == 2


def test_degrees_are_row_counts():
    assert np.array_equal(_make().degrees(), [1, 2, 1, 0, 0])


def test_density_and_sparsity_sum_to_one():
    g = _make()
    assert g.density() + g.sparsity() == pytest.approx(1.0)
    assert g.density() == pytest.approx(4 / 25)


def test_with_adj_replaces_only_adjacency():
    g = _make()
    g2 = g.with_adj(sp.eye(5, format="csr"))
    assert g2.adj.nnz == 5
    assert g.adj.nnz == 4
    assert np.array_equal(g2.features, g.features)


def test_validate_symmetric():
    g = _make()
    assert g.validate_symmetric()
    asym = g.with_adj(sp.csr_matrix((np.ones(1), ([0], [1])), shape=(5, 5)))
    assert not asym.validate_symmetric()


def test_shape_errors():
    g = _make()
    with pytest.raises(ShapeError):
        Graph(
            adj=g.adj[:, :4],  # non-square
            features=g.features,
            labels=g.labels,
            train_mask=g.train_mask,
            val_mask=g.val_mask,
            test_mask=g.test_mask,
        )
    with pytest.raises(ShapeError):
        Graph(
            adj=g.adj,
            features=g.features[:3],
            labels=g.labels,
            train_mask=g.train_mask,
            val_mask=g.val_mask,
            test_mask=g.test_mask,
        )
    with pytest.raises(ShapeError):
        Graph(
            adj=g.adj,
            features=g.features,
            labels=g.labels[:2],
            train_mask=g.train_mask,
            val_mask=g.val_mask,
            test_mask=g.test_mask,
        )


def test_storage_mb_positive():
    assert _make().storage_mb() > 0
