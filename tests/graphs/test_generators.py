"""Generator tests: power-law degrees, communities, masks, determinism."""

import numpy as np
import pytest

from repro.graphs import powerlaw_community_graph
from repro.graphs.generators import sample_powerlaw_degrees
from repro.graphs.stats import gini


def test_degree_sequence_mean_near_target(rng):
    degrees = sample_powerlaw_degrees(2000, avg_degree=10.0, rng=rng)
    assert 7.0 < degrees.mean() < 13.0


def test_degree_sequence_heavy_tail(rng):
    degrees = sample_powerlaw_degrees(2000, avg_degree=6.0, rng=rng)
    # A power law has hubs far above the mean and Gini well above uniform.
    assert degrees.max() > 5 * degrees.mean()
    assert gini(degrees) > 0.3


def test_degree_sequence_respects_min(rng):
    degrees = sample_powerlaw_degrees(500, avg_degree=3.0, min_degree=1, rng=rng)
    assert degrees.min() >= 1


def test_empty_degree_sequence():
    assert sample_powerlaw_degrees(0, 5.0).shape == (0,)


def test_graph_is_symmetric_binary(tiny_graph):
    assert tiny_graph.validate_symmetric()
    assert set(np.unique(tiny_graph.adj.data)) == {1.0}


def test_graph_has_no_self_loops(tiny_graph):
    assert tiny_graph.adj.diagonal().sum() == 0


def test_graph_has_no_isolated_nodes(tiny_graph):
    assert tiny_graph.degrees().min() >= 1


def test_labels_match_class_count(tiny_graph):
    assert tiny_graph.num_classes == 4
    assert tiny_graph.labels.min() >= 0


def test_masks_are_disjoint(tiny_graph):
    g = tiny_graph
    assert not np.any(g.train_mask & g.val_mask)
    assert not np.any(g.train_mask & g.test_mask)
    assert not np.any(g.val_mask & g.test_mask)
    assert g.train_mask.sum() > 0
    assert g.test_mask.sum() > 0


def test_intra_community_edges_dominate():
    g = powerlaw_community_graph(
        300, 8.0, 32, 3, intra_prob=0.9, rng=0
    )
    coo = g.adj.tocoo()
    same = (g.labels[coo.row] == g.labels[coo.col]).mean()
    assert same > 0.6  # strong homophily, the property METIS exploits


def test_features_correlate_with_community():
    g = powerlaw_community_graph(200, 6.0, 60, 4, rng=0)
    # Average feature vectors per community should differ pairwise.
    centroids = np.stack(
        [g.features[g.labels == c].mean(axis=0) for c in range(4)]
    )
    dots = centroids @ centroids.T
    off_diag = dots[~np.eye(4, dtype=bool)]
    assert np.all(np.diag(dots) > off_diag.max())


def test_generation_is_deterministic():
    a = powerlaw_community_graph(150, 5.0, 20, 3, rng=42)
    b = powerlaw_community_graph(150, 5.0, 20, 3, rng=42)
    assert (a.adj != b.adj).nnz == 0
    assert np.array_equal(a.features, b.features)


def test_different_seeds_differ():
    a = powerlaw_community_graph(150, 5.0, 20, 3, rng=1)
    b = powerlaw_community_graph(150, 5.0, 20, 3, rng=2)
    assert (a.adj != b.adj).nnz > 0
