"""Dataset stand-ins: spec matching, scaling, metadata."""

import numpy as np
import pytest

from repro.graphs import DATASET_SPECS, citeseer, cora, load_dataset


def test_all_six_specs_present():
    assert set(DATASET_SPECS) == {
        "cora", "citeseer", "pubmed", "nell", "ogbn-arxiv", "reddit"
    }


def test_spec_statistics_match_table_iii():
    spec = DATASET_SPECS["cora"]
    assert (spec.nodes, spec.edges, spec.features, spec.classes) == (
        2708, 5429, 1433, 7
    )
    reddit = DATASET_SPECS["reddit"]
    assert reddit.nodes == 232965
    assert reddit.edges == 114615892


def test_full_scale_cora_matches_node_count():
    g = load_dataset("cora", scale=1.0, seed=0)
    assert g.num_nodes == 2708
    assert g.num_features == 1433
    assert g.num_classes == 7


def test_scaling_reduces_size():
    big = load_dataset("cora", scale=0.5, seed=0)
    small = load_dataset("cora", scale=0.1, seed=0)
    assert small.num_nodes < big.num_nodes
    assert small.num_features <= big.num_features


def test_meta_records_paper_stats():
    g = load_dataset("pubmed", scale=0.05, seed=0)
    stats = g.meta["paper_stats"]
    assert stats["nodes"] == 19717
    assert stats["edges"] == 44338
    assert g.meta["scale"] == 0.05


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        load_dataset("imagenet")


def test_named_loaders_exist():
    g = cora(scale=0.05, seed=3)
    assert g.name == "cora"
    g2 = citeseer(scale=0.05, seed=3)
    assert g2.name == "citeseer"


def test_dataset_deterministic_per_seed():
    a = load_dataset("cora", scale=0.1, seed=5)
    b = load_dataset("cora", scale=0.1, seed=5)
    assert (a.adj != b.adj).nnz == 0


def test_citation_graphs_are_ultra_sparse():
    g = load_dataset("pubmed", scale=0.25, seed=0)
    assert g.sparsity() > 0.995  # the paper quotes 99.989% at full scale
