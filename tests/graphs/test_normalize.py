"""Normalization: Eq. (1)'s symmetric normalization and row-mean variant."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import add_self_loops, row_normalize, symmetric_normalize


@pytest.fixture()
def path_graph():
    # 0 - 1 - 2 (path), plus isolated node 3
    return sp.csr_matrix(
        (np.ones(4), ([0, 1, 1, 2], [1, 0, 2, 1])), shape=(4, 4)
    )


def test_add_self_loops_sets_diagonal(path_graph):
    with_loops = add_self_loops(path_graph)
    assert np.allclose(with_loops.diagonal(), 1.0)
    assert with_loops.nnz == path_graph.nnz + 4


def test_symmetric_normalize_matches_formula(path_graph):
    a_hat = symmetric_normalize(path_graph).toarray()
    a = path_graph.toarray() + np.eye(4)
    d = a.sum(axis=1)
    expected = a / np.sqrt(np.outer(d, d))
    np.testing.assert_allclose(a_hat, expected, atol=1e-12)


def test_symmetric_normalize_is_symmetric(path_graph):
    a_hat = symmetric_normalize(path_graph)
    assert abs(a_hat - a_hat.T).max() < 1e-12


def test_symmetric_normalize_eigenvalues_bounded(path_graph):
    # Â's spectrum lies in [-1, 1]: the renormalization-trick guarantee.
    a_hat = symmetric_normalize(path_graph).toarray()
    eigs = np.linalg.eigvalsh(a_hat)
    assert eigs.max() <= 1.0 + 1e-9
    assert eigs.min() >= -1.0 - 1e-9


def test_zero_degree_without_self_loops_stays_zero():
    adj = sp.csr_matrix((3, 3))
    a_hat = symmetric_normalize(adj, self_loops=False)
    assert a_hat.nnz == 0  # no NaNs, no infs


def test_row_normalize_rows_sum_to_one(path_graph):
    rn = row_normalize(path_graph).toarray()
    np.testing.assert_allclose(rn.sum(axis=1), 1.0, atol=1e-12)


def test_row_normalize_without_self_loops(path_graph):
    rn = row_normalize(path_graph, self_loops=False).toarray()
    # Rows with neighbours sum to 1; the isolated node's row stays zero.
    np.testing.assert_allclose(rn[:3].sum(axis=1), 1.0)
    assert rn[3].sum() == 0.0
