"""CLI surface of ``repro lint``: exit codes, formats, baseline, golden."""

from __future__ import annotations

import json

from repro.cli import build_parser, main

from tests.analysis.conftest import append_to


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def seed_violation(tree):
    append_to(tree / "runtime" / "keys.py",
              "\nimport time\nV = time.time()\n")


def test_parser_knows_lint():
    parser = build_parser()
    args = parser.parse_args(["lint"])
    assert args.command == "lint" and args.path is None
    args = parser.parse_args(["lint", "src/repro", "--format", "json",
                              "--rules", "determinism,store-write"])
    assert args.path == "src/repro"
    assert args.format == "json"
    assert args.rules == "determinism,store-write"


def test_shipped_tree_exits_0(capsys):
    code, out, _ = run_cli(["lint"], capsys)
    assert code == 0
    assert "clean" in out


def test_seeded_violation_exits_1_naming_rule_file_line(scratch_tree,
                                                        capsys):
    seed_violation(scratch_tree)
    code, out, _ = run_cli(["lint", str(scratch_tree)], capsys)
    assert code == 1
    assert "runtime/keys.py:" in out
    assert "[determinism]" in out
    assert "time.time" in out
    assert "hint:" in out


def test_unknown_rule_exits_2_with_suggestion(capsys):
    code, _, err = run_cli(["lint", "--rules", "determinsm"], capsys)
    assert code == 2
    assert "unknown lint rule" in err
    assert "did you mean 'determinism'?" in err


def test_bad_root_exits_2(tmp_path, capsys):
    code, _, err = run_cli(["lint", str(tmp_path / "nope")], capsys)
    assert code == 2
    assert "not a directory" in err


def test_json_format_is_machine_readable(scratch_tree, capsys):
    seed_violation(scratch_tree)
    code, out, _ = run_cli(
        ["lint", str(scratch_tree), "--format", "json"], capsys
    )
    assert code == 1
    payload = json.loads(out)
    assert payload["exit_code"] == 1
    assert payload["rules"] == [
        "determinism", "key-coverage", "schema-drift", "store-write",
        "except-swallow", "registry-sync",
    ]
    (finding,) = payload["findings"]
    assert finding["rule"] == "determinism"
    assert finding["path"] == "runtime/keys.py"
    assert finding["line"] > 0
    assert "time.time" in finding["message"]


def test_json_clean_run(scratch_tree, capsys):
    code, out, _ = run_cli(
        ["lint", str(scratch_tree), "--format", "json"], capsys
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["findings"] == [] and payload["exit_code"] == 0


def test_update_baseline_then_clean(scratch_tree, tmp_path, capsys):
    seed_violation(scratch_tree)
    baseline = tmp_path / "baseline.json"

    code, _, err = run_cli(
        ["lint", str(scratch_tree), "--baseline", str(baseline),
         "--update-baseline"],
        capsys,
    )
    assert code == 0
    assert "baselined 1 finding(s)" in err
    assert json.loads(baseline.read_text())["findings"]

    # grandfathered: exit 0, but the suppression is announced
    code, out, _ = run_cli(
        ["lint", str(scratch_tree), "--baseline", str(baseline)], capsys
    )
    assert code == 0
    assert "1 baselined finding(s) suppressed" in out

    # a new violation on top of the baseline still fails
    append_to(scratch_tree / "runtime" / "keys.py",
              "import os\nW = os.urandom(4)\n")
    code, out, _ = run_cli(
        ["lint", str(scratch_tree), "--baseline", str(baseline)], capsys
    )
    assert code == 1
    assert "os.urandom" in out


def test_write_golden_refreshes_then_lints(scratch_tree, capsys):
    from tests.analysis.conftest import rewrite

    rewrite(
        scratch_tree / "sweep" / "engine.py",
        "    agg_dma_utilization: float",
        "    agg_dma_utilization: float\n    new_metric: float = 0.0",
    )
    rewrite(
        scratch_tree / "runtime" / "keys.py",
        "CODE_SCHEMA_VERSION = 5",
        "CODE_SCHEMA_VERSION = 6",
    )
    # stale golden: fails without the refresh ...
    code, out, _ = run_cli(["lint", str(scratch_tree)], capsys)
    assert code == 1 and "schema-golden-stale" in out
    # ... --write-golden regenerates and the same run comes back clean
    code, out, err = run_cli(
        ["lint", str(scratch_tree), "--write-golden"], capsys
    )
    assert code == 0
    assert "wrote" in err
    golden = json.loads(
        (scratch_tree / "analysis" / "schema_golden.json").read_text()
    )
    assert golden["schema_version"] == 6


def test_lint_help_lists_rules():
    # the CLI docstring/help should not drift from the rule set
    from repro.analysis import rule_ids

    assert list(rule_ids()) == [
        "determinism", "key-coverage", "schema-drift", "store-write",
        "except-swallow", "registry-sync",
    ]
