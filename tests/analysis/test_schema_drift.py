"""Satellite: the schema-drift golden-fingerprint rule, end to end.

Mutating a serialized dataclass in a scratch copy must fail lint until
``CODE_SCHEMA_VERSION`` is bumped — and after the bump, the golden file
itself must be regenerated before the tree lints clean again.
"""

from __future__ import annotations

import json

from repro.analysis import LintContext, lint_tree
from repro.analysis.rules.schema_drift import (
    collect_shapes,
    fingerprint,
    write_golden,
)

from tests.analysis.conftest import append_to, rewrite


def drift_findings(tree):
    report = lint_tree(root=str(tree), rules=["schema-drift"])
    return report.findings


def add_result_field(tree):
    """Grow SweepPointResult by one serialized field."""
    rewrite(
        tree / "sweep" / "engine.py",
        "    agg_dma_utilization: float",
        "    agg_dma_utilization: float\n"
        "    new_metric: float = 0.0",
    )


def bump_schema_version(tree):
    rewrite(
        tree / "runtime" / "keys.py",
        "CODE_SCHEMA_VERSION = 5",
        "CODE_SCHEMA_VERSION = 6",
    )


def test_pristine_tree_matches_golden(scratch_tree):
    assert drift_findings(scratch_tree) == []


def test_shape_change_without_bump_is_drift(scratch_tree):
    add_result_field(scratch_tree)
    hits = drift_findings(scratch_tree)
    assert len(hits) == 1
    hit = hits[0]
    assert hit.rule == "schema-drift"
    assert hit.path == "runtime/keys.py"
    assert "without a CODE_SCHEMA_VERSION bump" in hit.message
    # the diff names the class and the new field
    assert "SweepPointResult" in hit.message
    assert "+new_metric" in hit.message
    assert "bump CODE_SCHEMA_VERSION" in hit.hint


def test_bump_trades_drift_for_stale_golden(scratch_tree):
    """The version bump clears schema-drift, but the golden file now
    records the *old* shapes under the old version — a second change
    could ride the same bump forever. schema-golden-stale closes that
    loophole."""
    add_result_field(scratch_tree)
    bump_schema_version(scratch_tree)
    hits = drift_findings(scratch_tree)
    assert len(hits) == 1
    hit = hits[0]
    assert hit.rule == "schema-golden-stale"
    assert hit.path == "analysis/schema_golden.json"
    assert "(5 -> 6)" in hit.message
    assert "--write-golden" in hit.hint


def test_write_golden_completes_the_cycle(scratch_tree):
    add_result_field(scratch_tree)
    bump_schema_version(scratch_tree)
    path = write_golden(LintContext(str(scratch_tree)))
    assert path is not None
    golden = json.loads(open(path).read())
    assert golden["schema_version"] == 6
    assert "new_metric" in json.dumps(golden["shapes"]["SweepPointResult"])
    assert drift_findings(scratch_tree) == []


def test_missing_golden_is_reported(scratch_tree):
    (scratch_tree / "analysis" / "schema_golden.json").unlink()
    hits = drift_findings(scratch_tree)
    assert len(hits) == 1
    assert hits[0].rule == "schema-golden-stale"
    assert "missing" in hits[0].message


def test_annotation_change_alone_is_drift(scratch_tree):
    # not just field adds: retyping a field changes unpickle semantics
    rewrite(
        scratch_tree / "sweep" / "engine.py",
        "    gcod_dram_bytes: float",
        "    gcod_dram_bytes: int",
    )
    hits = drift_findings(scratch_tree)
    assert len(hits) == 1
    assert hits[0].rule == "schema-drift"
    assert "annotations/defaults changed" in hits[0].message


def test_unserialized_helpers_do_not_trip_the_rule(scratch_tree):
    # a new module-level helper dataclass is not in SERIALIZED_SHAPES
    append_to(scratch_tree / "sweep" / "engine.py", (
        "\n\nimport dataclasses as _dc\n\n"
        "@_dc.dataclass\n"
        "class _ScratchHelper:\n"
        "    x: int = 0\n"
    ))
    assert drift_findings(scratch_tree) == []


def test_fingerprint_is_stable_across_reparse(scratch_tree):
    a = collect_shapes(LintContext(str(scratch_tree)))
    b = collect_shapes(LintContext(str(scratch_tree)))
    assert a is not None and fingerprint(a) == fingerprint(b)


def test_golden_matches_shipped_sources():
    """The checked-in golden must describe the tree as shipped —
    otherwise every fresh clone starts dirty."""
    from repro.analysis import default_lint_root
    from repro.analysis.rules.schema_drift import golden_path

    ctx = LintContext(default_lint_root())
    shapes = collect_shapes(ctx)
    assert shapes is not None
    golden = json.loads(open(golden_path(ctx)).read())
    assert golden["fingerprint"] == fingerprint(shapes)
    assert golden["schema_version"] == 5
