"""Each violation class, seeded into a scratch tree, fires its rule.

The acceptance contract: `repro lint` exits 0 on the shipped tree, and
seeding any of the six violation classes makes it exit 1 naming the
rule, file, and line.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_tree

from tests.analysis.conftest import append_to, rewrite


def findings_for(tree, rule=None, **kwargs):
    report = lint_tree(root=str(tree), **kwargs)
    if rule is None:
        return report.findings
    return [f for f in report.findings if f.rule == rule]


def test_shipped_tree_is_clean():
    report = lint_tree()  # the installed package
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.exit_code == 0


def test_scratch_copy_is_clean(scratch_tree):
    assert findings_for(scratch_tree) == []


# ----------------------------------------------------------------------
# rule 1: determinism
# ----------------------------------------------------------------------
def test_determinism_flags_wall_clock_in_keys(scratch_tree):
    append_to(scratch_tree / "runtime" / "keys.py", (
        "\n\ndef _stamp():\n"
        "    import time\n"
        "    return time.time()\n"
    ))
    hits = findings_for(scratch_tree, "determinism")
    assert len(hits) == 1
    assert hits[0].path == "runtime/keys.py"
    assert hits[0].line > 0
    assert "time.time" in hits[0].message


@pytest.mark.parametrize("snippet,name", [
    ("import random\nV = random.random()\n", "random.random"),
    ("import os\nV = os.urandom(8)\n", "os.urandom"),
    ("from datetime import datetime\nV = datetime.now()\n",
     "datetime.datetime.now"),
    ("from time import time\nV = time()\n", "time.time"),
])
def test_determinism_flags_each_entropy_source(scratch_tree, snippet,
                                               name):
    append_to(scratch_tree / "sweep" / "aggregate.py", "\n" + snippet)
    hits = findings_for(scratch_tree, "determinism")
    assert len(hits) == 1 and name in hits[0].message


def test_determinism_ignores_out_of_scope_modules(scratch_tree):
    # cli.py renders wall-clock timestamps (cache ls) legitimately: the
    # rule scopes to key-derivation/serialization modules only.
    append_to(scratch_tree / "cli.py",
              "\nimport time\nV = time.time()\n")
    assert findings_for(scratch_tree, "determinism") == []


def test_determinism_suppression_comment(scratch_tree):
    append_to(scratch_tree / "runtime" / "keys.py", (
        "\nimport time\n"
        "V = time.time()  # repro: lint-ok[determinism]\n"
    ))
    assert findings_for(scratch_tree, "determinism") == []


def test_allowlisted_uses_stay_clean(scratch_tree):
    # store `created` metadata, ledger `claimed_at`, stale-temp sweeps:
    # present in the real tree, allowlisted, so the copy lints clean.
    assert findings_for(scratch_tree, "determinism") == []


# ----------------------------------------------------------------------
# rule 2: key-coverage
# ----------------------------------------------------------------------
def test_new_gcod_config_field_without_key_update_fails(scratch_tree):
    """The acceptance criterion: a dummy field on GCoDConfig, with
    runtime/keys.py untouched, is a lint error naming the field."""
    rewrite(
        scratch_tree / "algorithm" / "config.py",
        "    kernel_backend: Optional[str] = None",
        "    kernel_backend: Optional[str] = None\n"
        "    dummy_knob: float = 1.0",
    )
    hits = findings_for(scratch_tree, "key-coverage")
    assert len(hits) == 1
    assert hits[0].path == "algorithm/config.py"
    assert "GCoDConfig.dummy_knob" in hits[0].message
    assert "bump" in hits[0].hint and "CODE_SCHEMA_VERSION" in hits[0].hint
    # the finding points at the seeded field's line
    lines = (scratch_tree / "algorithm" / "config.py").read_text() \
        .splitlines()
    assert "dummy_knob" in lines[hits[0].line - 1]


def test_covering_the_new_field_clears_the_finding(scratch_tree):
    rewrite(
        scratch_tree / "algorithm" / "config.py",
        "    kernel_backend: Optional[str] = None",
        "    kernel_backend: Optional[str] = None\n"
        "    dummy_knob: float = 1.0",
    )
    rewrite(
        scratch_tree / "runtime" / "keys.py",
        '            "kernel_backend",',
        '            "kernel_backend",\n            "dummy_knob",',
    )
    assert findings_for(scratch_tree, "key-coverage") == []


def test_stale_coverage_entry_is_flagged(scratch_tree):
    rewrite(
        scratch_tree / "runtime" / "keys.py",
        '            "kernel_backend",\n',
        '            "kernel_backend",\n            "ghost_field",\n',
    )
    hits = findings_for(scratch_tree, "key-coverage")
    assert len(hits) == 1
    assert "ghost_field" in hits[0].message
    assert hits[0].path == "runtime/keys.py"


def test_sweep_spec_fields_are_declared(scratch_tree):
    rewrite(
        scratch_tree / "sweep" / "spec.py",
        '    description: str = ""',
        '    description: str = ""\n    new_axis_knob: int = 0',
    )
    hits = findings_for(scratch_tree, "key-coverage")
    assert len(hits) == 1 and "SweepSpec.new_axis_knob" in hits[0].message


# ----------------------------------------------------------------------
# rule 4: store-write discipline
# ----------------------------------------------------------------------
def test_raw_write_in_store_module_is_flagged(scratch_tree):
    append_to(scratch_tree / "runtime" / "store.py", (
        "\n\ndef _sneaky(path, blob):\n"
        "    with open(path, 'wb') as fh:\n"
        "        fh.write(blob)\n"
    ))
    hits = findings_for(scratch_tree, "store-write")
    assert len(hits) == 1
    assert hits[0].path == "runtime/store.py"
    assert "open" in hits[0].message
    assert "StoreBackend" in hits[0].hint


def test_os_rename_in_sweep_is_flagged(scratch_tree):
    append_to(scratch_tree / "sweep" / "manifest.py", (
        "\nimport os\n\n"
        "def _swap(a, b):\n"
        "    os.rename(a, b)\n"
    ))
    hits = findings_for(scratch_tree, "store-write")
    assert len(hits) == 1 and "os.rename" in hits[0].message


def test_reads_and_backend_writes_stay_legal(scratch_tree):
    # backends.py itself is the allowed module, and plain reads are fine
    append_to(scratch_tree / "runtime" / "store.py", (
        "\n\ndef _peek(path):\n"
        "    with open(path) as fh:\n"
        "        return fh.read()\n"
    ))
    assert findings_for(scratch_tree, "store-write") == []


# ----------------------------------------------------------------------
# rule 5: exception hygiene
# ----------------------------------------------------------------------
def test_silent_broad_except_is_flagged(scratch_tree):
    append_to(scratch_tree / "runtime" / "store.py", (
        "\n\ndef _swallow(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        return None\n"
    ))
    hits = findings_for(scratch_tree, "except-swallow")
    assert len(hits) == 1
    assert hits[0].path == "runtime/store.py"
    assert "except Exception" in hits[0].message


def test_reraise_and_stderr_note_are_accepted(scratch_tree):
    append_to(scratch_tree / "runtime" / "store.py", (
        "\n\ndef _wrap(fn):\n"
        "    import sys\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception as exc:\n"
        "        raise RuntimeError('wrapped') from exc\n"
        "\n\n"
        "def _degrade(fn):\n"
        "    import sys\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception as exc:\n"
        "        print('degraded:', exc, file=sys.stderr)\n"
        "        return None\n"
    ))
    assert findings_for(scratch_tree, "except-swallow") == []


def test_bare_except_is_flagged(scratch_tree):
    append_to(scratch_tree / "graphs" / "stats.py", (
        "\n\ndef _shrug(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except:\n"
        "        return 0\n"
    ))
    hits = findings_for(scratch_tree, "except-swallow")
    assert len(hits) == 1 and "bare except" in hits[0].message


# ----------------------------------------------------------------------
# rule 6: registry consistency
# ----------------------------------------------------------------------
def test_unregistered_experiment_module_is_flagged(scratch_tree):
    (scratch_tree / "evaluation" / "experiments" / "tab99_new.py") \
        .write_text(
            '"""A new experiment that forgot to register."""\n\n'
            "def run(context):\n"
            "    return None\n"
        )
    hits = findings_for(scratch_tree, "registry-sync")
    paths = {f.path for f in hits}
    assert "evaluation/experiments/tab99_new.py" in paths
    assert any("register_experiment" in f.message for f in hits)
    # and the package __init__ is flagged for not importing it
    assert "evaluation/experiments/__init__.py" in paths
    assert any("never imported" in f.message for f in hits)


def test_hardcoded_cli_choices_are_flagged(scratch_tree):
    rewrite(
        scratch_tree / "cli.py",
        "choices=backend_choices()",
        "choices=('reference', 'vectorized', 'tiled')",
    )
    hits = findings_for(scratch_tree, "registry-sync")
    assert len(hits) == 1
    assert hits[0].path == "cli.py"
    assert "--kernel-backend" in hits[0].message
    assert "drift" in hits[0].message


def test_unregistered_kernel_backend_is_flagged(scratch_tree):
    (scratch_tree / "sparse" / "kernels" / "turbo.py").write_text(
        '"""A new backend that forgot to register."""\n\n'
        "from repro.sparse.kernels.vectorized import VectorizedBackend\n\n\n"
        "class TurboBackend(VectorizedBackend):\n"
        '    name = "turbo"\n'
    )
    hits = findings_for(scratch_tree, "registry-sync")
    assert len(hits) == 1
    assert hits[0].path == "sparse/kernels/turbo.py"
    assert "TurboBackend" in hits[0].message
    assert "backend_choices()" in hits[0].message
    assert "register_lazy_backend" in hits[0].hint


def test_lazy_registration_satisfies_kernel_sync(scratch_tree):
    """Both wiring styles count: the shipped tree registers three
    backends eagerly and ``compiled`` lazily, and is clean."""
    assert findings_for(scratch_tree, "registry-sync") == []


def test_unregistered_pipeline_stage_is_flagged(scratch_tree):
    append_to(
        scratch_tree / "hardware" / "pipeline.py",
        "\n\nclass ShadowStage(Stage):\n"
        '    name = "shadow"\n\n'
        "    def run(self, state, settings, context):\n"
        "        pass\n",
    )
    hits = findings_for(scratch_tree, "registry-sync")
    assert len(hits) == 1
    assert hits[0].path == "hardware/pipeline.py"
    assert "ShadowStage" in hits[0].message
    assert "get_stage('shadow')" in hits[0].message
    assert "register_stage(ShadowStage())" in hits[0].hint


def test_registered_extra_stage_satisfies_stage_sync(scratch_tree):
    append_to(
        scratch_tree / "hardware" / "pipeline.py",
        "\n\nclass ShadowStage(Stage):\n"
        '    name = "shadow"\n\n'
        "    def run(self, state, settings, context):\n"
        "        pass\n\n\n"
        "register_stage(ShadowStage())\n",
    )
    assert findings_for(scratch_tree, "registry-sync") == []


def test_kind_filter_must_validate(scratch_tree):
    rewrite(
        scratch_tree / "cli.py",
        'p_cache.add_argument("--kind", default=None, choices=ALL_KINDS,',
        'p_cache.add_argument("--kind", default=None,',
    )
    hits = findings_for(scratch_tree, "registry-sync")
    assert len(hits) == 1 and "--kind" in hits[0].message


# ----------------------------------------------------------------------
# engine behavior
# ----------------------------------------------------------------------
def test_parse_error_surfaces_as_finding(scratch_tree):
    (scratch_tree / "runtime" / "broken.py").write_text("def oops(:\n")
    hits = findings_for(scratch_tree)
    assert any(f.rule == "parse-error" and f.path == "runtime/broken.py"
               for f in hits)


def test_rule_subset_selection(scratch_tree):
    append_to(scratch_tree / "runtime" / "keys.py",
              "\nimport time\nV = time.time()\n")
    # only the selected rule runs
    assert findings_for(scratch_tree, rules="store-write") == []
    hits = findings_for(scratch_tree, rules="determinism")
    assert [f.rule for f in hits] == ["determinism"]


def test_unknown_rule_gets_did_you_mean():
    from repro.analysis.rules import resolve_rules
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="did you mean 'determinism'"):
        resolve_rules("Determinism")
    with pytest.raises(ConfigError, match="choose from"):
        resolve_rules("zzz")


def test_baseline_grandfathers_findings(scratch_tree, tmp_path):
    from repro.analysis import lint_tree, write_baseline

    append_to(scratch_tree / "runtime" / "keys.py",
              "\nimport time\nV = time.time()\n")
    report = lint_tree(root=str(scratch_tree), use_baseline=False)
    assert report.exit_code == 1
    baseline = tmp_path / "baseline.json"
    write_baseline(str(baseline), report.findings)
    rebaselined = lint_tree(root=str(scratch_tree),
                            baseline=str(baseline))
    assert rebaselined.exit_code == 0
    assert len(rebaselined.baselined) == len(report.findings)
    # a *new* finding still fails against the same baseline
    append_to(scratch_tree / "runtime" / "keys.py",
              "import os\nW = os.urandom(4)\n")
    again = lint_tree(root=str(scratch_tree), baseline=str(baseline))
    assert again.exit_code == 1
    assert len(again.findings) == 1 and "os.urandom" in \
        again.findings[0].message
