"""Shared fixture: a mutable scratch copy of the real repro package.

The lint rules are pure AST passes, so they run unchanged over a copied
tree — which is how every violation class gets seeded and asserted
without touching the shipped sources.
"""

from __future__ import annotations

import os
import shutil

import pytest

import repro

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


@pytest.fixture()
def scratch_tree(tmp_path):
    """A full copy of the repro package, safe to mutate."""
    dest = tmp_path / "repro"
    shutil.copytree(
        PACKAGE_ROOT, dest,
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"),
    )
    return dest


def append_to(path, text):
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(text)


def rewrite(path, old, new):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    assert old in text, f"expected {old!r} in {path}"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.replace(old, new))
