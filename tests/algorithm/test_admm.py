"""Step 2 (ADMM sparsify + polarize) unit tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.algorithm import GCoDConfig, admm_sparsify_polarize, polarization_loss
from repro.algorithm.admm import _project_topk, _undirected_pairs
from repro.nn.models import build_model
from repro.nn.training import train_model


def test_project_topk_keeps_largest():
    out = _project_topk(np.array([3.0, -5.0, 1.0, 4.0]), 2)
    assert np.array_equal(out, [0.0, -5.0, 0.0, 4.0])


def test_project_topk_edges():
    values = np.array([1.0, 2.0])
    assert np.array_equal(_project_topk(values, 0), [0.0, 0.0])
    assert np.array_equal(_project_topk(values, 5), values)


def test_undirected_pairs_symmetric_entries_share_id(tiny_graph):
    rows, cols, pair_id = _undirected_pairs(sp.csr_matrix(tiny_graph.adj))
    lookup = {}
    for r, c, p in zip(rows, cols, pair_id):
        key = (min(r, c), max(r, c))
        assert lookup.setdefault(key, p) == p
    assert pair_id.max() + 1 == tiny_graph.num_edges


def test_polarization_loss_prefers_diagonal():
    n = 50
    near = sp.csr_matrix((np.ones(2), ([1, 2], [2, 1])), shape=(n, n))
    far = sp.csr_matrix((np.ones(2), ([0, n - 1], [n - 1, 0])), shape=(n, n))
    assert polarization_loss(near) < polarization_loss(far)


def test_polarization_loss_empty():
    assert polarization_loss(sp.csr_matrix((4, 4))) == 0.0


@pytest.fixture(scope="module")
def tuned(request):
    tiny = request.getfixturevalue("tiny_graph")
    model = build_model("gcn", tiny, rng=0)
    train_model(model, tiny, epochs=15)
    config = GCoDConfig(
        prune_ratio=0.2, admm_iterations=2, admm_inner_steps=4, seed=0,
        pola_weight=2.0,
    )
    return tiny, admm_sparsify_polarize(tiny, model, config), model


def test_admm_prunes_to_target(tuned):
    graph, result, _ = tuned
    # protect_connectivity can keep slightly more than the target
    assert 0.75 <= result.kept_edge_fraction <= 0.95


def test_admm_output_symmetric_binary(tuned):
    graph, result, _ = tuned
    pruned = result.pruned_adj
    assert abs(pruned - pruned.T).nnz == 0
    assert set(np.unique(pruned.data)) <= {1.0}


def test_admm_no_isolated_nodes(tuned):
    graph, result, _ = tuned
    degrees = np.asarray(result.pruned_adj.sum(axis=1)).ravel()
    assert degrees.min() >= 1


def test_admm_no_new_edges(tuned):
    graph, result, _ = tuned
    # pruned support must be a subset of the original support
    extra = result.pruned_adj - result.pruned_adj.multiply(graph.adj)
    assert abs(extra).nnz == 0


def test_admm_restores_model_grad_flags(tuned):
    _, _, model = tuned
    assert all(p.requires_grad for p in model.parameters())


def test_admm_history_recorded(tuned):
    _, result, _ = tuned
    assert len(result.history) == 2
    assert all("task_loss" in h for h in result.history)


def test_admm_zero_inner_steps_projection_only(tiny_graph):
    # admm_inner_steps=0 used to crash with a NameError at the history
    # append; it is a legal projection-only configuration.
    model = build_model("gcn", tiny_graph, rng=0)
    config = GCoDConfig(
        prune_ratio=0.2, admm_iterations=2, admm_inner_steps=0, seed=0
    )
    result = admm_sparsify_polarize(tiny_graph, model, config)
    assert len(result.history) == 2
    for entry in result.history:
        assert np.isnan(entry["task_loss"]) and np.isnan(entry["pola"])
        assert np.isfinite(entry["residual"])
    assert result.pruned_adj.nnz > 0


def test_config_rejects_negative_admm_counts():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        GCoDConfig(admm_inner_steps=-1)
    with pytest.raises(ConfigError):
        GCoDConfig(admm_iterations=-2)
