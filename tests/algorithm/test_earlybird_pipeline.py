"""Early-bird detection and the full 3-step pipeline."""

import numpy as np
import pytest

from repro.algorithm import EarlyBirdDetector, GCoDConfig, run_gcod
from repro.algorithm.earlybird import magnitude_mask, mask_distance
from repro.errors import ConfigError
from repro.nn.models import build_model
from repro.nn.training import train_model


def test_magnitude_mask_keeps_fraction(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    masks = magnitude_mask(model, prune_ratio=0.5)
    for mask in masks.values():
        keep = mask.mean()
        assert 0.4 < keep < 0.6


def test_magnitude_mask_skips_biases(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    masks = magnitude_mask(model, prune_ratio=0.5)
    assert all(m.ndim >= 2 for m in masks.values())


def test_mask_distance_zero_for_identical(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    m = magnitude_mask(model, 0.5)
    assert mask_distance(m, m) == 0.0


def test_mask_distance_detects_changes(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    a = magnitude_mask(model, 0.5)
    b = {k: ~v for k, v in a.items()}
    assert mask_distance(a, b) == 1.0


def test_detector_stops_training(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    detector = EarlyBirdDetector(threshold=0.5, patience=2)  # loose: fires fast
    result = train_model(model, tiny_graph, epochs=100, epoch_callback=detector)
    assert detector.found_epoch is not None
    assert result.epochs_run < 100


def test_detector_never_fires_with_zero_threshold(tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    detector = EarlyBirdDetector(threshold=0.0, patience=3)
    train_model(model, tiny_graph, epochs=10, epoch_callback=detector)
    assert detector.found_epoch is None


# ----------------------------------------------------------------------
# full pipeline (uses the session-scoped gcod_result fixture)
# ----------------------------------------------------------------------
def test_pipeline_preserves_accuracy(gcod_result, small_graph):
    # "without compromising the model accuracy": allow a small tolerance
    assert gcod_result.accuracy_final >= gcod_result.accuracy_pretrain - 0.08


def test_pipeline_prunes_edges(gcod_result):
    assert 0.0 < gcod_result.total_edge_reduction < 0.9


def test_pipeline_improves_dense_fraction(gcod_result):
    layout = gcod_result.layout
    before = layout.dense_fraction(gcod_result.partitioned_graph.adj)
    after = layout.dense_fraction(gcod_result.final_graph.adj)
    assert after > before  # polarization concentrates mass in blocks


def test_pipeline_reduces_polarization_loss(gcod_result):
    assert (
        gcod_result.admm.polarization_after
        <= gcod_result.admm.polarization_before + 1e-9
    )


def test_pipeline_graph_stays_symmetric(gcod_result):
    assert gcod_result.final_graph.validate_symmetric()


def test_pipeline_cost_breakdown_consistent(gcod_result):
    cost = gcod_result.cost_breakdown
    total = cost["step1_epochs"] + cost["step2_epochs"] + cost["step3_epochs"]
    assert total == pytest.approx(cost["total_epochs"])
    fractions = (
        cost["step1_fraction"] + cost["step2_fraction"] + cost["step3_fraction"]
    )
    assert fractions == pytest.approx(1.0)


def test_pipeline_summary_text(gcod_result):
    text = gcod_result.summary()
    assert "GCoD[gcn]" in text and "acc" in text


def test_config_validation():
    with pytest.raises(ConfigError):
        GCoDConfig(prune_ratio=1.5)
    with pytest.raises(ConfigError):
        GCoDConfig(num_classes=0)
    with pytest.raises(ConfigError):
        GCoDConfig(num_classes=4, num_subgraphs=2)
    with pytest.raises(ConfigError):
        GCoDConfig(patch_threshold=-1)


def test_auto_patch_size_scales():
    cfg = GCoDConfig(num_subgraphs=8)
    assert cfg.auto_patch_size(3200) == 100
    assert cfg.auto_patch_size(10) == 4  # floor
    explicit = GCoDConfig(patch_size=32)
    assert explicit.auto_patch_size(10**6) == 32


def test_pipeline_runs_on_other_arch(tiny_graph):
    cfg = GCoDConfig(
        pretrain_epochs=6, retrain_epochs=4, admm_iterations=1,
        admm_inner_steps=2, num_subgraphs=4, seed=0,
    )
    result = run_gcod(tiny_graph, "sage", cfg)
    assert result.arch == "sage"
    assert result.final_graph.adj.nnz > 0
