"""Step 3 (structural patch pruning) unit tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.algorithm import patch_nnz_counts, structural_sparsify


def _blocky_adj():
    """16x16 matrix: one dense 4x4 block, a few scattered singletons."""
    n = 16
    dense = np.zeros((n, n))
    dense[:4, :4] = 1.0
    np.fill_diagonal(dense, 0.0)
    dense[10, 2] = 1.0
    dense[2, 10] = 1.0
    dense[14, 5] = 1.0
    dense[5, 14] = 1.0
    return sp.csr_matrix(dense)


def test_patch_counts_sum_to_nnz():
    adj = _blocky_adj()
    counts = patch_nnz_counts(adj, 4)
    assert counts.sum() == adj.nnz


def test_patch_counts_shape():
    counts = patch_nnz_counts(_blocky_adj(), 5)
    assert counts.shape == (4, 4)  # ceil(16/5) = 4


def test_patch_counts_symmetric_for_symmetric_input():
    counts = patch_nnz_counts(_blocky_adj(), 4).toarray()
    assert np.array_equal(counts, counts.T)


def test_sparse_patches_pruned_dense_kept():
    adj = _blocky_adj()
    result = structural_sparsify(adj, patch_threshold=3, patch_size=4,
                                 off_diagonal_only=False)
    # The dense 4x4 block (12 nnz) survives; the singleton patches die.
    assert result.pruned_adj[1, 2] == 1.0
    assert result.pruned_adj[10, 2] == 0.0
    assert result.removed_edges == 2


def test_threshold_zero_prunes_nothing():
    adj = _blocky_adj()
    result = structural_sparsify(adj, patch_threshold=0, patch_size=4)
    assert result.pruned_adj.nnz == adj.nnz
    assert result.removed_fraction == 0.0


def test_huge_threshold_prunes_everything_offdiagonal():
    adj = _blocky_adj()
    result = structural_sparsify(adj, patch_threshold=1000, patch_size=4,
                                 off_diagonal_only=False)
    assert result.pruned_adj.nnz == 0


def test_result_stays_symmetric():
    adj = _blocky_adj()
    result = structural_sparsify(adj, patch_threshold=3, patch_size=4,
                                 off_diagonal_only=False)
    assert abs(result.pruned_adj - result.pruned_adj.T).nnz == 0


def test_layout_protects_diagonal_blocks(partitioned):
    graph, layout = partitioned
    result = structural_sparsify(
        graph.adj, layout=layout, patch_threshold=10**9, patch_size=8,
        off_diagonal_only=True,
    )
    dense_before, _ = layout.split(graph.adj)
    dense_after, _ = layout.split(result.pruned_adj)
    # Even with an absurd threshold, diagonal-block entries survive.
    assert dense_after.nnz == dense_before.nnz


def test_counts_report(partitioned):
    graph, layout = partitioned
    result = structural_sparsify(graph.adj, layout=layout,
                                 patch_threshold=5, patch_size=8)
    assert 0 <= result.pruned_patches <= result.total_patches
    assert 0.0 <= result.removed_fraction <= 1.0
