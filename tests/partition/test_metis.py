"""Multilevel partitioner: coverage, balance, cut quality."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.partition import metis_partition
from repro.partition.metis import edge_cut


def _community_adj(rng, blocks=4, per_block=30, p_in=0.4, p_out=0.01):
    n = blocks * per_block
    dense = (rng.random((n, n)) < p_out).astype(float)
    for b in range(blocks):
        lo, hi = b * per_block, (b + 1) * per_block
        dense[lo:hi, lo:hi] = (rng.random((per_block, per_block)) < p_in)
    dense = np.triu(dense, 1)
    dense = dense + dense.T
    return sp.csr_matrix(dense)


def test_every_node_assigned(small_graph):
    parts = metis_partition(small_graph.adj, 4, rng=0)
    assert parts.shape == (small_graph.num_nodes,)
    assert set(np.unique(parts)) <= set(range(4))


def test_k_one_is_trivial(small_graph):
    assert np.all(metis_partition(small_graph.adj, 1, rng=0) == 0)


def test_workload_balance(small_graph):
    degrees = small_graph.degrees() + 1.0
    parts = metis_partition(small_graph.adj, 4, node_weight=degrees, rng=0)
    loads = np.zeros(4)
    np.add.at(loads, parts, degrees)
    assert loads.max() <= 1.6 * loads.mean()  # tolerance-bounded balance


def test_recovers_planted_communities(rng):
    adj = _community_adj(rng)
    parts = metis_partition(adj, 4, rng=0)
    cut = edge_cut(adj, parts)
    random_parts = rng.integers(0, 4, size=adj.shape[0])
    assert cut < 0.5 * edge_cut(adj, random_parts)


def test_beats_random_cut(small_graph, rng):
    parts = metis_partition(small_graph.adj, 4, rng=0)
    random_parts = rng.integers(0, 4, size=small_graph.num_nodes)
    assert edge_cut(small_graph.adj, parts) <= edge_cut(
        small_graph.adj, random_parts
    )


def test_k_exceeding_nodes_raises():
    adj = sp.eye(3, format="csr")
    with pytest.raises(PartitionError):
        metis_partition(adj, 5)


def test_invalid_k_raises(small_graph):
    with pytest.raises(PartitionError):
        metis_partition(small_graph.adj, 0)


def test_deterministic_given_seed(small_graph):
    a = metis_partition(small_graph.adj, 3, rng=7)
    b = metis_partition(small_graph.adj, 3, rng=7)
    assert np.array_equal(a, b)


def test_handles_disconnected_graph():
    adj = sp.block_diag(
        [np.ones((5, 5)) - np.eye(5), np.ones((5, 5)) - np.eye(5)]
    ).tocsr()
    parts = metis_partition(adj, 2, rng=0)
    assert set(np.unique(parts)) == {0, 1}


def test_edge_cut_counts_once():
    adj = sp.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
    assert edge_cut(adj, np.array([0, 1])) == 1
    assert edge_cut(adj, np.array([0, 0])) == 0
