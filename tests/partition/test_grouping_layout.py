"""Group distribution and the BlockLayout contract."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import distribute_round_robin, partition_graph


def test_round_robin_balances_loads(rng):
    loads = rng.random(20) * 100
    groups = distribute_round_robin(loads, 4)
    totals = np.zeros(4)
    np.add.at(totals, groups, loads)
    assert totals.max() <= totals.min() + loads.max()


def test_round_robin_single_group():
    assert np.all(distribute_round_robin([1.0, 2.0], 1) == 0)


def test_round_robin_invalid_groups():
    with pytest.raises(PartitionError):
        distribute_round_robin([1.0], 0)


def test_layout_spans_cover_all_nodes(partitioned):
    graph, layout = partitioned
    covered = np.zeros(graph.num_nodes, dtype=bool)
    for span in layout.spans:
        assert not covered[span.start : span.stop].any()
        covered[span.start : span.stop] = True
    assert covered.all()


def test_layout_spans_are_homogeneous(partitioned):
    graph, layout = partitioned
    for span in layout.spans:
        segment_class = layout.node_class[span.start : span.stop]
        segment_group = layout.node_group[span.start : span.stop]
        assert np.all(segment_class == span.class_id)
        assert np.all(segment_group == span.group_id)


def test_layout_order_is_group_then_class(partitioned):
    _, layout = partitioned
    # node_group must be non-decreasing; within a group, class non-decreasing.
    assert np.all(np.diff(layout.node_group) >= 0)
    for g in range(layout.num_groups):
        sel = layout.node_group == g
        assert np.all(np.diff(layout.node_class[sel]) >= 0)


def test_split_partitions_every_nnz(partitioned):
    graph, layout = partitioned
    dense, sparse = layout.split(graph.adj)
    assert dense.nnz + sparse.nnz == graph.adj.nnz
    assert (dense.multiply(sparse)).nnz == 0  # disjoint supports


def test_dense_entries_are_within_subgraphs(partitioned):
    graph, layout = partitioned
    dense, _ = layout.split(graph.adj)
    coo = dense.tocoo()
    assert np.all(
        layout.node_subgraph[coo.row] == layout.node_subgraph[coo.col]
    )


def test_dense_fraction_bounds(partitioned):
    graph, layout = partitioned
    frac = layout.dense_fraction(graph.adj)
    assert 0.0 < frac < 1.0


def test_class_block_workloads_sum(partitioned):
    graph, layout = partitioned
    per_class = layout.class_block_workloads(graph.adj)
    dense, _ = layout.split(graph.adj)
    assert per_class.sum() == dense.nnz


def test_balance_metric_in_unit_interval(partitioned):
    graph, layout = partitioned
    balance = layout.balance_within_classes(graph.adj)
    assert 0.0 < balance <= 1.0


def test_permutation_preserves_degrees(small_graph, partitioned):
    graph, layout = partitioned
    assert sorted(graph.degrees()) == sorted(small_graph.degrees())


def test_degree_classes_respected(partitioned):
    graph, layout = partitioned
    # Class 1 (higher-degree bin) nodes have degree >= class 0 max threshold
    degrees = graph.degrees()
    c0 = degrees[layout.node_class == 0]
    c1 = degrees[layout.node_class == 1]
    if c0.size and c1.size:
        assert c1.min() >= c0.max() - 0  # bins derived from thresholds


def test_bounds_lists(partitioned):
    _, layout = partitioned
    for b in layout.class_bounds() + layout.group_bounds():
        assert 0 < b < layout.num_nodes


def test_invalid_hyperparameters(small_graph):
    with pytest.raises(PartitionError):
        partition_graph(small_graph, num_classes=0)
    with pytest.raises(PartitionError):
        partition_graph(small_graph, num_classes=3, num_subgraphs=2)


def test_single_class_single_group(small_graph):
    graph, layout = partition_graph(
        small_graph, num_classes=1, num_groups=1, num_subgraphs=4, rng=0
    )
    assert layout.num_classes == 1
    assert layout.num_subgraphs >= 1
    assert layout.dense_fraction(graph.adj) > 0


def test_describe_mentions_counts(partitioned):
    _, layout = partitioned
    text = layout.describe()
    assert "classes" in text and "subgraphs" in text
