"""Degree-class binning tests."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import degree_classes, quantile_thresholds


def test_single_class_all_zero():
    classes = degree_classes(np.array([1, 5, 100]), 1)
    assert np.array_equal(classes, [0, 0, 0])


def test_classes_monotone_in_degree(rng):
    degrees = rng.integers(1, 200, size=500)
    classes = degree_classes(degrees, 3)
    order = np.argsort(degrees)
    assert np.all(np.diff(classes[order]) >= 0)


def test_explicit_thresholds():
    classes = degree_classes(np.array([0, 1, 5, 9, 10, 50]), 3,
                             thresholds=[2, 10])
    assert np.array_equal(classes, [0, 0, 1, 1, 2, 2])


def test_threshold_count_checked():
    with pytest.raises(PartitionError):
        degree_classes(np.array([1, 2]), 3, thresholds=[1])


def test_thresholds_must_increase():
    with pytest.raises(PartitionError):
        degree_classes(np.array([1, 2]), 3, thresholds=[5, 5])


def test_quantile_thresholds_balance_workload(rng):
    # On a power-law sequence, classes should carry comparable edge mass.
    from repro.graphs.generators import sample_powerlaw_degrees

    degrees = sample_powerlaw_degrees(3000, 8.0, rng=rng)
    classes = degree_classes(degrees, 3)
    work = np.zeros(3)
    np.add.at(work, classes, degrees + 1.0)
    present = work[work > 0]
    assert present.min() > 0.1 * present.max()


def test_quantile_thresholds_strictly_increasing(rng):
    degrees = rng.integers(1, 50, size=200)
    th = quantile_thresholds(degrees, 4)
    assert np.all(np.diff(th) > 0)


def test_empty_degrees():
    assert quantile_thresholds(np.array([], dtype=int), 3).size == 2 or True
    classes = degree_classes(np.array([], dtype=int), 2)
    assert classes.shape == (0,)


def test_invalid_class_count():
    with pytest.raises(PartitionError):
        quantile_thresholds(np.array([1, 2]), 0)
