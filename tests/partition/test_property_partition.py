"""Property-based tests for partitioning invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import degree_classes, distribute_round_robin, metis_partition


@given(
    st.lists(st.integers(0, 500), min_size=1, max_size=200),
    st.integers(1, 5),
)
@settings(max_examples=50, deadline=None)
def test_degree_classes_total_and_range(degrees, c):
    classes = degree_classes(np.array(degrees, dtype=np.int64), c)
    assert classes.shape == (len(degrees),)
    assert classes.min() >= 0
    assert classes.max() < c


@given(
    st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=50),
    st.integers(1, 6),
)
@settings(max_examples=50, deadline=None)
def test_round_robin_assigns_every_subgraph(loads, groups):
    assignment = distribute_round_robin(loads, groups)
    assert assignment.shape == (len(loads),)
    assert assignment.min() >= 0
    assert assignment.max() < groups


@given(st.integers(10, 60), st.integers(2, 4), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_metis_covers_random_graphs(n, k, seed):
    rng = np.random.default_rng(seed)
    # Random symmetric graph with a guaranteed spanning structure
    dense = (rng.random((n, n)) < 0.1).astype(float)
    ring = np.eye(n, k=1)
    dense = np.triu(dense + ring, 1)
    dense = dense + dense.T
    adj = sp.csr_matrix(dense)
    parts = metis_partition(adj, k, rng=rng)
    assert parts.shape == (n,)
    # every part id in range and no node unassigned
    assert parts.min() >= 0 and parts.max() < k
