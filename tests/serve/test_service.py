"""The inference service end to end: warm/cold, batching, correlation.

Every test runs a real server (``start_in_thread``: the actual asyncio
loop, the actual TCP protocol, the actual executor) against micro-scale
datasets so a cold training dispatch completes in well under a second.
"""

import threading

import pytest

from repro.evaluation.context import EvalContext
from repro.runtime.store import ArtifactStore
from repro.serve import (
    ServeClient,
    ServeRequest,
    ServeSettings,
    start_in_thread,
)

#: Micro scales: each cold dispatch trains in a fraction of a second.
MICRO_SCALES = {"cora": 0.06, "citeseer": 0.05}


def micro_ctx(store=None) -> EvalContext:
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


@pytest.fixture
def server():
    srv = start_in_thread(micro_ctx(), ServeSettings(
        port=0, max_batch=4, max_wait_ms=40.0))
    try:
        yield srv
    finally:
        srv.stop()


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


def test_ping(client):
    assert client.ping()


def test_cold_then_warm(client):
    first = client.query("cora")
    assert first.source == "cold"
    assert first.kernel_backend == "vectorized"
    assert first.batch_id >= 0
    assert first.batch_size == 1
    assert isinstance(first.result, dict) and first.result

    second = client.query("cora")
    assert second.source == "warm"
    assert second.batch_id == -1
    assert second.result == first.result

    stats = client.stats()
    assert stats["gcod_runs"] == 1
    assert stats["warm_hits"] == 1
    assert stats["cold_misses"] == 1


def test_pipelined_identical_queries_share_one_dispatch(client):
    responses = client.query_many([("cora", "gcn")] * 4)
    stats = client.stats()
    assert stats["gcod_runs"] == 1
    assert {r.source for r in responses} == {"cold"}
    assert {r.batch_id for r in responses} == {responses[0].batch_id}
    assert {r.batch_size for r in responses} == {4}
    assert len({r.id for r in responses}) == 4
    # every rider gets the same payload the dispatch produced
    assert all(r.result == responses[0].result for r in responses)


def test_distinct_keys_get_distinct_batches(client):
    responses = client.query_many([("cora", "gcn"), ("citeseer", "gcn")])
    assert {r.source for r in responses} == {"cold"}
    assert responses[0].batch_id != responses[1].batch_id
    assert client.stats()["gcod_runs"] == 2


def test_responses_correlate_out_of_order(client):
    """A warm answer overtakes a cold one; the client reorders by id."""
    client.query("cora")  # warm the key
    responses = client.query_many([("citeseer", "gcn"), ("cora", "gcn")])
    # request order is preserved in the returned list...
    assert responses[0].dataset == "citeseer"
    assert responses[1].dataset == "cora"
    # ...even though the warm cora answer finished first
    assert responses[0].source == "cold"
    assert responses[1].source == "warm"


def test_unknown_dataset_errors_but_server_survives(client):
    with pytest.raises(Exception, match="unknown dataset"):
        client.query("no-such-dataset")
    assert client.ping()
    assert client.stats()["errors"] == 1
    # and real queries still work afterwards
    assert client.query("cora").status == "ok"


def test_failed_query_counts_as_error_not_miss(client):
    """A failing dispatch is an `errors`, never a served hit/miss.

    The miss counters (and batch sizes) used to be bumped before the
    query could still fail, so every error also over-reported a miss.
    """
    with pytest.raises(Exception, match="unknown dataset"):
        client.query("no-such-dataset")
    stats = client.stats()
    assert stats["errors"] == 1
    assert stats["cold_misses"] == 0
    assert stats["warm_hits"] == 0
    assert stats["batched_requests"] == 0
    assert stats["coalesced_requests"] == 0

    # A real served miss still counts exactly once after the failure.
    assert client.query("cora").source == "cold"
    stats = client.stats()
    assert stats["errors"] == 1
    assert stats["cold_misses"] == 1
    assert stats["batched_requests"] == 1


def test_failed_pipelined_queries_count_only_errors(client):
    """Racing requests that all fail report errors only: no coalesced or
    batched requests survive in the stats, and later successful batches
    still report their true size."""
    responses = client.query_many([("no-such-dataset", "gcn")] * 3)
    assert {r.status for r in responses} == {"error"}
    stats = client.stats()
    assert stats["errors"] == 3
    assert stats["cold_misses"] == 0
    assert stats["batched_requests"] == 0
    assert stats["coalesced_requests"] == 0

    responses = client.query_many([("cora", "gcn")] * 2)
    assert {r.batch_size for r in responses} == {2}


def test_malformed_line_gets_error_response(server):
    import socket

    with socket.create_connection((server.host, server.port),
                                  timeout=30) as sock:
        sock.sendall(b"this is not json\n")
        line = sock.makefile("r").readline()
    assert '"status":"error"' in line
    assert "malformed" in line


def test_compiled_spelling_resolves_to_fallback(client):
    """Without numba, a ``compiled`` query reports the resolved backend
    and shares the vectorized cache series (no second training run)."""
    from repro.sparse.kernels import get_backend

    resolved = get_backend("compiled").name
    warmup = client.query("cora")
    response = client.query("cora", kernel_backend="compiled")
    assert response.kernel_backend == resolved
    if resolved == "vectorized":  # no numba on this machine
        assert response.source == "warm"
        assert response.result == warmup.result
        assert client.stats()["gcod_runs"] == 1


def test_store_backed_server_answers_warm_across_restarts(tmp_path):
    """A second server process-equivalent (fresh service, same store)
    serves the first server's training without running a dispatch."""
    store_root = str(tmp_path)
    srv1 = start_in_thread(micro_ctx(ArtifactStore(store_root)),
                           ServeSettings(port=0))
    try:
        with ServeClient(srv1.host, srv1.port) as c:
            assert c.query("cora").source == "cold"
    finally:
        srv1.stop()

    srv2 = start_in_thread(micro_ctx(ArtifactStore(store_root)),
                           ServeSettings(port=0))
    try:
        with ServeClient(srv2.host, srv2.port) as c:
            response = c.query("cora")
            assert response.source == "warm"
            assert c.stats()["gcod_runs"] == 0
    finally:
        srv2.stop()


def test_concurrent_clients_on_one_cold_key(server):
    """N separate connections racing the same cold key still cost one
    training dispatch (batch window or in-flight join, either path)."""
    results = [None] * 3

    def hit(idx: int) -> None:
        with ServeClient(server.host, server.port) as c:
            results[idx] = c.query("citeseer")

    threads = [threading.Thread(target=hit, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r is not None and r.status == "ok" for r in results)
    payloads = [r.result for r in results]
    assert all(p == payloads[0] for p in payloads)
    with ServeClient(server.host, server.port) as c:
        assert c.stats()["gcod_runs"] == 1


def test_request_level_api_matches_helper(client):
    raw = client.call(ServeRequest(id="explicit-1", dataset="cora"))
    assert raw.id == "explicit-1"
    assert raw.status == "ok"
