"""The serve wire format: round-trips and validation failures."""

import json

import pytest

from repro.errors import ServeProtocolError
from repro.serve import (
    ServeRequest,
    ServeResponse,
    parse_request,
    parse_response,
)


def test_request_round_trip():
    req = ServeRequest(id="q1", dataset="cora", arch="gin",
                       kernel_backend="tiled")
    back = parse_request(req.to_json())
    assert back == req


def test_request_defaults():
    back = parse_request(json.dumps({"id": "q2", "dataset": "cora"}))
    assert back.op == "query"
    assert back.arch == "gcn"
    assert back.kernel_backend is None


def test_request_json_is_deterministic():
    req = ServeRequest(id="q1", dataset="cora")
    assert req.to_json() == req.to_json()
    assert "\n" not in req.to_json()


def test_response_round_trip():
    resp = ServeResponse(id="q1", status="ok", source="warm",
                         dataset="cora", arch="gcn",
                         kernel_backend="vectorized",
                         result={"accuracy": 0.8})
    back = parse_response(resp.to_json())
    assert back == resp


@pytest.mark.parametrize("line,fragment", [
    ("not json", "malformed request JSON"),
    ("[1, 2]", "must be a JSON object"),
    (json.dumps({"op": "query", "dataset": "cora"}), "non-empty string 'id'"),
    (json.dumps({"id": "q", "op": "reboot"}), "unknown op"),
    (json.dumps({"id": "q", "op": "query"}), "need a 'dataset'"),
    (json.dumps({"id": "q", "dataset": "cora", "arch": ""}),
     "'arch' must be"),
    (json.dumps({"id": "q", "dataset": "cora", "kernel_backend": 7}),
     "'kernel_backend' must be"),
])
def test_request_validation_errors(line, fragment):
    with pytest.raises(ServeProtocolError, match=fragment):
        parse_request(line)


@pytest.mark.parametrize("line,fragment", [
    ("nope", "malformed response JSON"),
    (json.dumps({"id": "q", "status": "ok", "bogus": 1}),
     "unknown fields"),
    (json.dumps({"status": "ok"}), "string 'id'"),
    (json.dumps({"id": "q", "status": "maybe"}), "'ok' or 'error'"),
])
def test_response_validation_errors(line, fragment):
    with pytest.raises(ServeProtocolError, match=fragment):
        parse_response(line)


def test_stats_and_ping_requests_need_no_dataset():
    for op in ("stats", "ping"):
        back = parse_request(json.dumps({"id": "s1", "op": op}))
        assert back.op == op
        assert back.dataset == ""
