"""Compression baselines (Tab. VII): each trains and behaves as specified."""

import numpy as np
import pytest

from repro.compression import (
    random_prune_edges,
    train_degree_quant,
    train_qat,
    train_random_pruned,
    train_sgcn,
)
from repro.compression.degree_quant import protection_probabilities
from repro.compression.quantize import quantize_dequantize


def test_random_prune_ratio(tiny_graph):
    pruned = random_prune_edges(tiny_graph.adj, 0.3, rng=0)
    ratio = 1 - pruned.nnz / tiny_graph.adj.nnz
    assert 0.15 < ratio < 0.45


def test_random_prune_symmetric(tiny_graph):
    pruned = random_prune_edges(tiny_graph.adj, 0.3, rng=0)
    assert abs(pruned - pruned.T).nnz == 0


def test_random_prune_zero_ratio_is_identity(tiny_graph):
    pruned = random_prune_edges(tiny_graph.adj, 0.0, rng=0)
    assert (pruned != tiny_graph.adj).nnz == 0


def test_rp_trains(tiny_graph):
    result, pruned = train_random_pruned(tiny_graph, epochs=15, seed=0)
    assert result.test_accuracy > 0.3
    assert pruned.adj.nnz < tiny_graph.adj.nnz


def test_qat_weights_are_quantized(tiny_graph):
    result, model = train_qat(tiny_graph, bits=8, epochs=10, seed=0)
    for name, p in model.named_parameters():
        if p.data.ndim >= 2:
            np.testing.assert_allclose(
                p.data, quantize_dequantize(p.data, 8), atol=1e-12,
                err_msg=f"{name} not on the int8 grid",
            )


def test_qat_reaches_reasonable_accuracy(tiny_graph):
    result, _ = train_qat(tiny_graph, bits=8, epochs=20, seed=0)
    assert result.test_accuracy > 0.4


def test_degree_quant_protection_monotone():
    degrees = np.array([1, 5, 10, 100])
    probs = protection_probabilities(degrees, max_prob=0.9)
    assert np.all(np.diff(probs) > 0)
    assert probs.max() <= 0.9


def test_degree_quant_trains_and_restores_features(tiny_graph):
    before = tiny_graph.features.copy()
    result, _ = train_degree_quant(tiny_graph, epochs=10, seed=0)
    np.testing.assert_array_equal(tiny_graph.features, before)
    assert result.test_accuracy > 0.3


def test_sgcn_prunes_and_trains(tiny_graph):
    result, pruned = train_sgcn(
        tiny_graph, prune_ratio=0.2, pretrain_epochs=8, retrain_epochs=10,
        seed=0,
    )
    assert pruned.adj.nnz < tiny_graph.adj.nnz
    assert result.test_accuracy > 0.3
