"""Quantization machinery tests (shared by QAT / Degree-Quant / GCoD-8bit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import QuantSpec, quantize_dequantize, quantize_ste
from repro.nn.tensor import Tensor


def test_spec_levels():
    assert QuantSpec(8).levels == 127
    assert QuantSpec(4).levels == 7


def test_quantize_idempotent(rng):
    x = rng.normal(size=(10, 10))
    once = quantize_dequantize(x, 8)
    twice = quantize_dequantize(once, 8)
    np.testing.assert_allclose(once, twice, atol=1e-12)


def test_quantize_preserves_zero():
    x = np.array([0.0, 1.0, -1.0])
    q = quantize_dequantize(x, 8)
    assert q[0] == 0.0


def test_quantize_bounded_error(rng):
    x = rng.normal(size=1000)
    q = quantize_dequantize(x, 8)
    scale = np.abs(x).max() / 127
    assert np.abs(q - x).max() <= scale / 2 + 1e-12


def test_lower_bits_coarser(rng):
    x = rng.normal(size=500)
    err8 = np.abs(quantize_dequantize(x, 8) - x).mean()
    err4 = np.abs(quantize_dequantize(x, 4) - x).mean()
    assert err4 > err8


def test_quantize_distinct_values_count(rng):
    x = rng.normal(size=10000)
    q = quantize_dequantize(x, 4)
    assert len(np.unique(q)) <= 2 * QuantSpec(4).levels + 1


def test_ste_row_mask_protects_rows(rng):
    x = Tensor(rng.normal(size=(4, 6)))
    mask = np.array([True, False, False, True])
    out = quantize_ste(x, bits=4, row_mask=mask)
    np.testing.assert_allclose(out.data[0], x.data[0])
    np.testing.assert_allclose(out.data[3], x.data[3])
    assert not np.allclose(out.data[1], x.data[1])


@given(st.integers(2, 16))
@settings(max_examples=15, deadline=None)
def test_quantize_all_zero_safe(bits):
    q = quantize_dequantize(np.zeros(8), bits)
    assert np.array_equal(q, np.zeros(8))


@given(
    st.lists(st.floats(-1e6, 1e6, allow_nan=False, width=32),
             min_size=1, max_size=64),
    st.integers(2, 12),
)
@settings(max_examples=60, deadline=None)
def test_quantize_never_exceeds_range(values, bits):
    x = np.asarray(values, dtype=np.float64)
    q = quantize_dequantize(x, bits)
    assert np.abs(q).max() <= np.abs(x).max() + 1e-9
