"""Experiment registry: discovery, ordering, dependency declarations."""

import pytest

from repro.errors import UnknownExperimentError
from repro.runtime.registry import (
    all_experiments,
    experiment_names,
    get_experiment,
    resolve_experiments,
)

EXPECTED = {
    "fig04", "fig09", "fig10", "fig11", "fig12", "tab03", "tab04", "tab05",
    "tab06", "tab07", "ablation-cs", "ablation-design", "training-cost",
    "reordering", "multi-tenant",
}


def test_every_experiment_module_registers():
    assert set(experiment_names()) == EXPECTED


def test_report_order_is_stable():
    names = experiment_names()
    assert names[0] == "tab03"  # tables first, paper order
    assert names.index("fig09") < names.index("fig10")
    assert names[-1] == "reordering"


def test_get_unknown_raises_clear_error():
    with pytest.raises(UnknownExperimentError) as exc:
        get_experiment("fig99")
    assert "unknown experiment" in str(exc.value)
    assert "fig09" in str(exc.value)  # suggests valid choices
    # registry lookups still behave like mapping access
    assert isinstance(exc.value, KeyError)


def test_resolve_subset_keeps_report_order():
    specs = resolve_experiments(["reordering", "tab03", "fig09"])
    assert [s.name for s in specs] == ["tab03", "fig09", "reordering"]


def test_deps_are_deduplicated_pairs():
    fig09 = get_experiment("fig09")
    deps = fig09.deps(None)
    assert len(deps) == len(set(deps))
    assert ("cora", "gcn") in deps
    assert all(len(d) == 2 for d in deps)


def test_static_tables_declare_no_gcod_deps():
    # static tables + experiments that only train privately tuned configs
    for name in ("tab03", "tab04", "tab05", "training-cost", "ablation-cs"):
        assert get_experiment(name).deps(None) == ()
    # ablation-design's full-GCoD baselines ARE shared context runs
    assert get_experiment("ablation-design").deps(None) == (
        ("cora", "gcn"), ("reddit", "gcn"))


def test_duplicate_registration_raises(monkeypatch):
    import repro.runtime.registry as reg

    # work on a copy so the real registry stays pristine for other tests
    monkeypatch.setattr(reg, "_REGISTRY", dict(reg._REGISTRY))
    with pytest.raises(ValueError, match="already registered"):
        reg.register_experiment(name="fig04", title="dup",
                                runner=lambda ctx: None)


def test_runner_callables_are_module_run_functions():
    from repro.evaluation.experiments import fig04_visualization

    assert get_experiment("fig04").runner is fig04_visualization.run
