"""Plan/execute runner: dedup, warm-cache zero-run guarantee, jobs parity.

These tests run real (micro-scale) GCoD pipelines, so they double as the
acceptance harness for the artifact store: a warm ``repro report`` performs
zero training runs, and a parallel cold run produces byte-identical output
to a serial one.
"""

import pytest

from repro.evaluation import EvalContext
from repro.evaluation.report import generate_report, report_results
from repro.runtime import counters
from repro.runtime.runner import build_task, plan_experiments
from repro.runtime.store import ArtifactStore

#: Tiny scales so each GCoD run trains in well under a second.
MICRO_SCALES = {"cora": 0.06, "citeseer": 0.05, "pubmed": 0.012}

#: Two experiments whose GCoD deps overlap on (cora, gcn): fig04 needs the
#: three citation graphs, reordering needs cora again.
NAMES = ["fig04", "reordering"]


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_deduplicates_union_of_deps(tmp_path):
    ctx = micro_ctx(ArtifactStore(str(tmp_path)))
    plan = plan_experiments(ctx, names=NAMES)
    assert plan.deps_total == 3  # cora shared between the two experiments
    assert [t.dataset for t in plan.tasks] == ["citeseer", "cora", "pubmed"]
    assert all(t.arch == "gcn" for t in plan.tasks)
    assert plan.cached == []


def test_task_key_matches_context_key(tmp_path):
    ctx = micro_ctx(ArtifactStore(str(tmp_path)))
    task = build_task(ctx, "cora", "gcn")
    assert task.key().digest == ctx.gcod_store_key("cora", "gcn").digest
    assert task.kernel_backend == "vectorized"  # resolved, never None


def test_plan_skips_stored_experiments_and_runs(tmp_path):
    store = ArtifactStore(str(tmp_path))
    generate_report(micro_ctx(store), names=NAMES, jobs=1)
    plan = plan_experiments(micro_ctx(store), names=NAMES)
    assert sorted(plan.cached) == sorted(NAMES)
    assert plan.tasks == []  # nothing left to train


# ----------------------------------------------------------------------
# the acceptance criteria: warm = zero runs, jobs parity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cold_store(tmp_path_factory):
    """A store warmed by one serial cold report, plus that report's text."""
    root = str(tmp_path_factory.mktemp("store-cold"))
    store = ArtifactStore(root)
    counters.reset_counters()
    text = generate_report(micro_ctx(store), names=NAMES, jobs=1)
    runs = counters.gcod_run_count()
    assert runs == 3  # the planner's three unique deps, trained once each
    return root, text


def test_warm_report_zero_gcod_runs_and_identical(cold_store):
    root, cold_text = cold_store
    ctx = micro_ctx(ArtifactStore(root))  # fresh context, warm store
    counters.reset_counters()
    warm_text = generate_report(ctx, names=NAMES, jobs=1)
    assert counters.gcod_run_count() == 0
    assert warm_text == cold_text


def test_warm_results_equal_fresh_results(cold_store):
    """Cached ExperimentResults are identical to freshly computed ones."""
    root, _ = cold_store
    warm = report_results(micro_ctx(ArtifactStore(root)), names=NAMES)
    assert sorted(warm.cache_hits) == sorted(NAMES)
    fresh = report_results(micro_ctx(store=None), names=NAMES)
    assert fresh.cache_hits == []
    for name in NAMES:
        w, f = warm.results[name], fresh.results[name]
        assert w.to_json() == f.to_json()
        assert w.render() == f.render()
        assert w.to_csv() == f.to_csv()


def test_parallel_jobs_byte_identical(cold_store, tmp_path):
    root, cold_text = cold_store
    store2 = ArtifactStore(str(tmp_path / "store-jobs2"))
    counters.reset_counters()
    text2 = generate_report(micro_ctx(store2), names=NAMES, jobs=2)
    # pool workers trained in their own processes; the parent ran nothing
    assert counters.gcod_run_count() == 0
    assert text2 == cold_text
    # ... and the structured JSON/CSV forms match the serial run's too
    serial = report_results(micro_ctx(ArtifactStore(root)), names=NAMES)
    parallel = report_results(micro_ctx(store2), names=NAMES)
    for name in NAMES:
        assert parallel.results[name].to_json() == \
            serial.results[name].to_json()
        assert parallel.results[name].to_csv() == \
            serial.results[name].to_csv()


def test_corrupted_gcod_entry_retrains_and_matches(cold_store):
    root, cold_text = cold_store
    store = ArtifactStore(root)
    ctx = micro_ctx(store)
    key = ctx.gcod_store_key("cora", "gcn")
    assert store.contains(key)
    with open(store._data_path(key), "wb") as fh:
        fh.write(b"garbage")
    # the experiment results are themselves cached, so corrupting one GCoD
    # artifact only costs a retrain once something asks for that run:
    counters.reset_counters()
    result = ctx.gcod("cora", "gcn")
    assert counters.gcod_run_count() == 1
    assert result.final_graph.name == "cora"
    # ... and the store healed: a fresh context reads the rewritten entry.
    counters.reset_counters()
    assert micro_ctx(ArtifactStore(root)).gcod("cora", "gcn") is not None
    assert counters.gcod_run_count() == 0
    assert generate_report(micro_ctx(ArtifactStore(root)),
                           names=NAMES, jobs=1) == cold_text
