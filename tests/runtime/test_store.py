"""Artifact store: keys, persistence, invalidation, corruption recovery."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.algorithm import GCoDConfig
from repro.runtime import keys as rkeys
from repro.runtime.backends import StoreBackendError
from repro.runtime.store import ArtifactStore, default_cache_dir

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _gcod_key(**overrides):
    params = dict(
        dataset="cora",
        scale=0.1,
        arch="gcn",
        config=GCoDConfig(pretrain_epochs=5, retrain_epochs=3),
        kernel_backend=None,
        seed=0,
        profile="fast",
    )
    params.update(overrides)
    return rkeys.gcod_key(**params)


# ----------------------------------------------------------------------
# key stability
# ----------------------------------------------------------------------
def test_same_inputs_same_digest():
    assert _gcod_key().digest == _gcod_key().digest


def test_config_change_changes_digest():
    base = _gcod_key()
    assert base.digest != _gcod_key(seed=1).digest
    assert base.digest != _gcod_key(scale=0.2).digest
    assert base.digest != _gcod_key(arch="gin").digest
    assert base.digest != _gcod_key(profile="full").digest
    assert base.digest != _gcod_key(
        config=GCoDConfig(pretrain_epochs=6, retrain_epochs=3)
    ).digest


def test_default_backend_spellings_share_digest():
    # None (process default) and the default's explicit name are the same run.
    assert _gcod_key().digest == _gcod_key(kernel_backend="vectorized").digest
    assert _gcod_key().digest != _gcod_key(kernel_backend="reference").digest
    # ... including inside the config itself.
    cfg = GCoDConfig(pretrain_epochs=5, retrain_epochs=3,
                     kernel_backend="vectorized")
    assert _gcod_key().digest == _gcod_key(config=cfg).digest


def test_schema_version_invalidates(monkeypatch):
    base = _gcod_key()
    monkeypatch.setattr(rkeys, "CODE_SCHEMA_VERSION",
                        rkeys.CODE_SCHEMA_VERSION + 1)
    assert _gcod_key().digest != base.digest


def test_hash_stable_across_processes():
    script = (
        "from repro.runtime import keys as rkeys\n"
        "from repro.algorithm import GCoDConfig\n"
        "key = rkeys.gcod_key('cora', 0.1, 'gcn',\n"
        "    GCoDConfig(pretrain_epochs=5, retrain_epochs=3),\n"
        "    None, 0, 'fast')\n"
        "print(key.digest)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True, check=True,
    )
    assert out.stdout.strip() == _gcod_key().digest


def test_jsonable_rejects_unhashable_types():
    with pytest.raises(TypeError):
        rkeys.stable_hash({"x": object()})


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def test_roundtrip_and_contains(tmp_path):
    store = ArtifactStore(str(tmp_path))
    key = _gcod_key()
    payload = {"arr": np.arange(10.0), "nested": [1, "two", 3.0]}
    assert store.get(key) is None
    assert not store.contains(key)
    store.put(key, payload, summary={"note": "hello"})
    assert store.contains(key)
    loaded = store.get(key)
    np.testing.assert_array_equal(loaded["arr"], payload["arr"])
    assert loaded["nested"] == payload["nested"]


def test_invalidate_and_clear(tmp_path):
    store = ArtifactStore(str(tmp_path))
    k1, k2 = _gcod_key(), _gcod_key(seed=1)
    store.put(k1, "a")
    store.put(k2, "b")
    graph_key = rkeys.graph_key("cora", 0.1, 0)
    store.put(graph_key, "g")
    assert store.invalidate(k1)
    assert not store.invalidate(k1)  # already gone
    assert store.get(k1) is None and store.get(k2) == "b"
    assert store.clear(kind="gcod") == 1  # k2 only
    assert store.get(graph_key) == "g"
    # another process's in-flight atomic write must survive a clear ...
    tmp_part = os.path.join(store._dir("graph"), ".tmp-123.part")
    with open(tmp_part, "wb") as fh:
        fh.write(b"half-written")
    assert store.clear() == 1  # the graph
    assert os.path.exists(tmp_part)
    # ... but an orphan of a long-dead writer is reclaimed
    import time
    old = time.time() - 2 * store._STALE_TMP_S
    os.utime(tmp_part, (old, old))
    store.clear()
    assert not os.path.exists(tmp_part)
    assert store.stats()["total"]["entries"] == 0


def test_corrupted_entry_recovers(tmp_path):
    store = ArtifactStore(str(tmp_path))
    key = _gcod_key()
    store.put(key, {"fine": True})
    with open(store._data_path(key), "wb") as fh:
        fh.write(b"\x80\x05 this is not a pickle")
    assert store.get(key) is None  # corrupted -> miss
    assert not store.contains(key)  # ... and the entry was dropped
    store.put(key, {"fine": "again"})
    assert store.get(key) == {"fine": "again"}


def test_stats_and_entries(tmp_path):
    store = ArtifactStore(str(tmp_path))
    store.put(_gcod_key(), "x", summary={"dataset": "cora"})
    store.put(rkeys.graph_key("cora", 0.1, 0), "y")
    stats = store.stats()
    assert stats["gcod"]["entries"] == 1
    assert stats["graph"]["entries"] == 1
    assert stats["total"]["entries"] == 2
    entries = list(store.entries())
    assert {e.kind for e in entries} == {"gcod", "graph"}
    gcod_entry = next(e for e in entries if e.kind == "gcod")
    assert gcod_entry.meta["summary"] == {"dataset": "cora"}
    assert gcod_entry.meta["key"]["dataset"] == "cora"


def test_empty_store_reads_do_not_touch_disk(tmp_path):
    root = tmp_path / "never-created"
    store = ArtifactStore(str(root))
    assert store.get(_gcod_key()) is None
    assert list(store.entries()) == []
    assert store.clear() == 0
    assert not root.exists()


def test_put_on_unwritable_root_degrades(tmp_path, capsys):
    # a plain file where the cache root should be: makedirs fails for any
    # uid (chmod-based setups are bypassed when tests run as root)
    root = tmp_path / "blocked"
    root.write_text("not a directory")
    store = ArtifactStore(str(root))
    key = _gcod_key()
    store.put(key, {"expensive": True})  # must not raise
    assert "could not persist" in capsys.readouterr().err
    assert store.get(key) is None


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == str(tmp_path / "custom")


# ---------------------------------------------------------------------------
# crash-safety: degrade on unpicklable payloads, sidecar-first ordering,
# stale-temp reclamation
# ---------------------------------------------------------------------------

def test_put_unpicklable_artifact_degrades(tmp_path, capsys):
    store = ArtifactStore(str(tmp_path))
    key = _gcod_key()
    store.put(key, lambda x: x)  # lambdas cannot be pickled; must not raise
    assert "could not persist" in capsys.readouterr().err
    assert not store.contains(key)
    assert store.get(key) is None
    # nothing half-written: no stray files under the kind directory
    assert not os.path.exists(store._data_path(key))
    assert not os.path.exists(store._meta_path(key))


def test_put_unpicklable_summary_degrades(tmp_path, capsys):
    store = ArtifactStore(str(tmp_path))
    key = _gcod_key()
    # the artifact itself pickles fine; the *summary* cannot be made
    # canonical JSON (sets are rejected by jsonable)
    store.put(key, {"fine": True}, summary={"bad": {1, 2, 3}})
    assert "could not persist" in capsys.readouterr().err
    # degrade means no entry at all — never a blob with broken metadata
    assert not store.contains(key)
    # and the store still works afterwards
    store.put(key, {"fine": True}, summary={"good": 1})
    assert store.get(key) == {"fine": True}


def test_put_killed_between_sidecar_and_data_is_invisible(tmp_path):
    """A crash after the first write must not leave a listable entry.

    The sidecar (.json) goes first precisely so that the entry-defining
    .pkl appears only once its metadata is durable.
    """
    store = ArtifactStore(str(tmp_path))
    key = _gcod_key()
    backend = store.backend
    writes = []
    real_write = backend.write

    def dying_write(kind, name, blob):
        writes.append(name)
        if len(writes) == 2:
            raise StoreBackendError("simulated kill")  # .pkl never lands
        return real_write(kind, name, blob)

    backend.write = dying_write
    try:
        store.put(key, {"expensive": True})  # degrades, must not raise
    finally:
        backend.write = real_write

    # write order is the safety property: metadata sidecar before data
    assert writes[0].endswith(".json") and writes[1].endswith(".pkl")
    # the interrupted entry is invisible everywhere
    assert not store.contains(key)
    assert store.get(key) is None
    assert list(store.entries()) == []
    assert store.stats()["total"]["entries"] == 0
    # a later retry fully recovers (the orphan sidecar is overwritten)
    store.put(key, {"expensive": True})
    assert store.get(key) == {"expensive": True}
    assert [e.digest for e in store.entries()] == [key.digest]


def test_stale_temps_swept_on_init(tmp_path):
    root = tmp_path / "store"
    store = ArtifactStore(str(root))
    store.put(_gcod_key(), "x")
    kind_dir = root / "gcod"
    import time as _time
    old = kind_dir / ".tmp-dead-writer.part"
    old.write_bytes(b"z" * 128)
    ancient = _time.time() - 2 * ArtifactStore._STALE_TMP_S
    os.utime(old, (ancient, ancient))
    fresh = kind_dir / ".tmp-live-writer.part"
    fresh.write_bytes(b"y" * 64)

    reopened = ArtifactStore(str(root))
    # the dead writer's orphan was reclaimed on open...
    assert not old.exists()
    assert reopened.reclaimed_tmp == 1
    assert reopened.reclaimed_tmp_bytes == 128
    # ...the possibly-in-flight fresh one was left alone, and is visible
    # in stats under the tmp pseudo-kind (excluded from total)
    assert fresh.exists()
    stats = reopened.stats()
    assert stats["tmp"] == {"entries": 1, "bytes": 64}
    assert stats["total"]["entries"] == 1
    # the real entry survived the sweep
    assert reopened.get(_gcod_key()) == "x"
