"""Regression tests: EvalContext cache keys must isolate backend/scale.

Before the runtime refactor, ``EvalContext._gcod`` was keyed by
``(dataset, arch)`` only. Contexts created via ``dataclasses.replace`` share
the underlying memo dictionaries, so a replaced context with a *different
kernel backend* (or different ``dataset_scales``) silently served the other
context's trained results. The memo key now includes both.
"""

from dataclasses import replace

import pytest

import repro.evaluation.context as context_mod
from repro.evaluation.context import EvalContext


class _FakeGraph:
    name = "cora"


@pytest.fixture
def stubbed(monkeypatch):
    """Stub dataset generation and GCoD training with call counting."""
    calls = {"gcod": 0, "graph": 0}

    def fake_load(dataset, scale=None, seed=0):
        calls["graph"] += 1
        return _FakeGraph()

    def fake_run_gcod(graph, arch, config):
        calls["gcod"] += 1
        return ("result", calls["gcod"], arch, config.kernel_backend)

    monkeypatch.setattr(context_mod, "load_dataset", fake_load)
    monkeypatch.setattr(context_mod, "run_gcod", fake_run_gcod)
    return calls


def test_gcod_memoizes_per_key(stubbed):
    ctx = EvalContext(profile="fast")
    first = ctx.gcod("cora", "gcn")
    assert ctx.gcod("cora", "gcn") is first
    assert stubbed["gcod"] == 1


def test_replaced_context_with_other_backend_does_not_share(stubbed):
    ctx = EvalContext(profile="fast")
    ctx.gcod("cora", "gcn")
    other = replace(ctx, kernel_backend="reference")
    # dataclasses.replace shares the memo dict — the historical trap:
    assert other._gcod is ctx._gcod
    result = other.gcod("cora", "gcn")
    assert stubbed["gcod"] == 2, "reference-backend context reused " \
                                 "the vectorized context's result"
    assert result[3] == "reference"
    # and the original context still sees its own entry (its None backend
    # resolved to the process default at run time)
    assert ctx.gcod("cora", "gcn")[3] == "vectorized"
    assert stubbed["gcod"] == 2


def test_replaced_context_with_other_profile_does_not_share(stubbed):
    # With an explicit dataset_scales override the effective scale is the
    # same under both profiles, so the profile itself must be in the key
    # (it selects the epoch budgets).
    ctx = EvalContext(profile="fast", dataset_scales={"cora": 0.1})
    ctx.gcod("cora", "gcn")
    full = replace(ctx, profile="full")
    assert full._gcod is ctx._gcod
    full.gcod("cora", "gcn")
    assert stubbed["gcod"] == 2


def test_replaced_context_with_other_scales_does_not_share(stubbed):
    ctx = EvalContext(profile="fast")
    ctx.gcod("cora", "gcn")
    shrunk = replace(ctx, dataset_scales={"cora": 0.01})
    assert shrunk._gcod is ctx._gcod
    shrunk.gcod("cora", "gcn")
    assert stubbed["gcod"] == 2


def test_graph_memo_includes_scale(stubbed):
    ctx = EvalContext(profile="fast")
    ctx.graph("cora")
    assert stubbed["graph"] == 1
    shrunk = replace(ctx, dataset_scales={"cora": 0.01})
    shrunk.graph("cora")
    assert stubbed["graph"] == 2


def test_store_keys_cover_backend_scale_profile():
    ctx = EvalContext(profile="fast")
    base = ctx.gcod_store_key("cora", "gcn")
    assert replace(ctx, kernel_backend="reference").gcod_store_key(
        "cora", "gcn").digest != base.digest
    assert replace(ctx, dataset_scales={"cora": 0.01}).gcod_store_key(
        "cora", "gcn").digest != base.digest
    assert replace(ctx, seed=7).gcod_store_key("cora", "gcn").digest \
        != base.digest
    assert replace(ctx, profile="full").gcod_store_key("cora", "gcn").digest \
        != base.digest
    # experiment keys react to the same knobs
    exp = ctx.experiment_store_key("fig09")
    assert replace(ctx, kernel_backend="reference").experiment_store_key(
        "fig09").digest != exp.digest
    assert ctx.experiment_store_key("fig10").digest != exp.digest
