"""Store backends: local atomicity, the HTTP backend, fault injection.

The remote tier runs a real :class:`StoreServer` (stdlib, in-thread, on a
free port) and injects faults through the handler's ``fault_hook`` — so
every failure mode the client claims to survive (5xx bursts, timeouts,
dropped connections mid-PUT, corrupted bodies, claim races) is exercised
over an actual socket, not a mock.
"""

import http.client
import os
import socket
import threading
import time

import pytest

from repro.runtime import keys as rkeys
from repro.runtime.backends import (
    SHA_HEADER,
    HTTPStoreBackend,
    LocalDirBackend,
    StoreBackendError,
    is_remote_locator,
    open_backend,
    _sha256,
)
from repro.runtime.runner import pool_context
from repro.runtime.server import StoreRequestHandler, make_store_server
from repro.runtime.store import ArtifactStore


def _gcod_key():
    from repro.algorithm import GCoDConfig

    return rkeys.gcod_key("cora", 0.1, "gcn", GCoDConfig(), None, 0, "fast")


@pytest.fixture
def served(tmp_path):
    """``(server, url, root)`` of a live store server; hookable handler."""
    handler = type("Handler", (StoreRequestHandler,), {})
    server = make_store_server(str(tmp_path / "served"), port=0,
                               handler=handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, server.url, str(tmp_path / "served")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _client(url, **kw):
    kw.setdefault("timeout_s", 5.0)
    kw.setdefault("backoff_s", 0.001)
    return HTTPStoreBackend(url, **kw)


# ---------------------------------------------------------------------------
# locator routing
# ---------------------------------------------------------------------------

def test_open_backend_routes_locators(tmp_path):
    local = open_backend(str(tmp_path))
    assert isinstance(local, LocalDirBackend) and not local.shared
    remote = open_backend("http://127.0.0.1:1/")
    assert isinstance(remote, HTTPStoreBackend) and remote.shared
    assert remote.locator == "http://127.0.0.1:1"
    assert is_remote_locator("https://store:8750")
    assert not is_remote_locator(str(tmp_path))


# ---------------------------------------------------------------------------
# local backend: the atomic claim primitive under real process races
# ---------------------------------------------------------------------------

def _race_local_claim(root, barrier, queue):
    backend = LocalDirBackend(root)
    barrier.wait()
    queue.put(backend.put_if_absent("claim", "point-x.json", b"{}"))


def test_local_put_if_absent_two_processes(tmp_path):
    ctx = pool_context()
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_race_local_claim,
                    args=(str(tmp_path), barrier, queue))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    assert sorted(results) == [False, True]  # exactly one winner
    # and the winning blob is intact, with no temp debris left behind
    assert LocalDirBackend(str(tmp_path)).read("claim", "point-x.json") == b"{}"
    assert list(LocalDirBackend(str(tmp_path)).temp_files()) == []


# ---------------------------------------------------------------------------
# HTTP backend: the happy path over a real socket
# ---------------------------------------------------------------------------

def test_http_store_roundtrip(served):
    _server, url, _root = served
    store = ArtifactStore(url)
    assert store.is_remote
    assert store.root == url
    key = _gcod_key()
    assert store.get(key) is None
    store.put(key, {"speedup": 1.5}, summary={"dataset": "cora"})
    assert store.contains(key)
    assert store.get(key) == {"speedup": 1.5}
    [entry] = list(store.entries())
    assert entry.kind == "gcod" and entry.digest == key.digest
    assert entry.meta["summary"] == {"dataset": "cora"}
    stats = store.stats()
    assert stats["gcod"]["entries"] == 1
    assert store.invalidate(key)
    assert store.get(key) is None

    # the claim protocol end-to-end
    assert store.claim("point-abc", {"worker": "w1"})
    assert not store.claim("point-abc", {"worker": "w2"})  # lost the race
    assert store.read_claim("point-abc")["worker"] == "w1"
    assert store.release_claim("point-abc")
    assert store.read_claim("point-abc") is None


def test_http_and_local_share_one_root(served):
    """A blob PUT over HTTP is the same entry a local store reads."""
    _server, url, root = served
    remote = ArtifactStore(url)
    key = _gcod_key()
    remote.put(key, [1, 2, 3])
    local = ArtifactStore(root)
    assert local.get(key) == [1, 2, 3]


# ---------------------------------------------------------------------------
# fault injection: 5xx, timeouts, dropped connections, corruption
# ---------------------------------------------------------------------------

def test_get_retries_through_transient_500(served):
    server, url, _root = served
    failures = {"left": 2}

    def hook(handler, method, kind, name):
        if method == "GET" and kind == "gcod" and failures["left"]:
            failures["left"] -= 1
            return 500
        return None

    key = _gcod_key()
    ArtifactStore(url).put(key, "precious")
    server.RequestHandlerClass.fault_hook = staticmethod(hook)
    got = ArtifactStore(_client(url, retries=3)).get(key)
    assert got == "precious"  # two 500s burned, third attempt landed
    assert failures["left"] == 0


def test_persistent_500_degrades_to_miss_and_put_degrades(served, capsys):
    server, url, _root = served
    server.RequestHandlerClass.fault_hook = staticmethod(
        lambda handler, method, kind, name: 500 if kind == "gcod" else None
    )
    store = ArtifactStore(_client(url, retries=2))
    key = _gcod_key()
    # reads: degrade to a miss -> the caller recomputes locally
    assert store.get(key) is None
    assert not store.contains(key)
    # writes: degrade with the stderr note, never raise
    store.put(key, {"expensive": True})
    assert "could not persist" in capsys.readouterr().err
    # a run that recomputed can still finish: the artifact only ever
    # lived in memory, exactly like a --no-cache run
    assert store.get(key) is None


def test_get_timeout_degrades_to_miss(served):
    server, url, _root = served

    def hook(handler, method, kind, name):
        if method == "GET" and kind == "gcod":
            time.sleep(0.4)  # well past the client's budget
        return None

    key = _gcod_key()
    ArtifactStore(url).put(key, "slow")
    server.RequestHandlerClass.fault_hook = staticmethod(hook)
    store = ArtifactStore(_client(url, timeout_s=0.05, retries=2))
    assert store.get(key) is None  # timed out twice -> miss, not a hang


def test_connection_drop_mid_put_commits_nothing(served):
    """A PUT whose connection dies mid-body must leave no partial entry."""
    server, url, root = served
    host, port = server.server_address[0], server.server_address[1]
    blob = b"x" * 4096
    conn = http.client.HTTPConnection(host, port, timeout=5)
    conn.putrequest("PUT", "/gcod/deadbeef.pkl")
    conn.putheader("Content-Length", str(len(blob)))
    conn.putheader(SHA_HEADER, _sha256(blob))
    conn.endheaders()
    conn.send(blob[:100])  # ... and the sender dies here
    conn.sock.shutdown(socket.SHUT_WR)
    try:
        response = conn.getresponse()
        assert response.status == 400  # short body refused
    except (http.client.HTTPException, OSError):
        pass  # server may just drop the half-request; equally fine
    finally:
        conn.close()

    deadline = time.time() + 5
    backend = LocalDirBackend(root)
    while time.time() < deadline and list(backend.temp_files()):
        time.sleep(0.01)
    assert backend.read("gcod", "deadbeef.pkl") is None  # nothing committed
    assert not os.path.exists(os.path.join(root, "gcod", "deadbeef.pkl"))
    # the server is still healthy for the next client
    assert ArtifactStore(url).get(_gcod_key()) is None


def test_sha_mismatch_put_commits_nothing(served):
    _server, url, _root = served
    client = _client(url)
    got = client._request(
        "PUT", client._url("gcod", "cafe.pkl"), body=b"corrupted-in-flight",
        headers={SHA_HEADER: "0" * 64},
    )
    assert got[0] == 400
    assert not client.exists("gcod", "cafe.pkl")


def _race_http_claim(url, barrier, queue):
    backend = HTTPStoreBackend(url, timeout_s=5.0, backoff_s=0.001)
    barrier.wait()
    queue.put(backend.put_if_absent("claim", "point-y.json", b"{}"))


def test_http_put_if_absent_race_two_processes(served):
    _server, url, _root = served
    ctx = pool_context()
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_race_http_claim, args=(url, barrier, queue))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    assert sorted(results) == [False, True]  # exactly one 201


def test_truncated_remote_pickle_invalidates(served):
    """Corruption that slips past transport checks dies at unpickling."""
    _server, url, root = served
    store = ArtifactStore(url)
    key = _gcod_key()
    store.put(key, {"fine": True})
    data_path = os.path.join(root, "gcod", f"{key.digest}.pkl")
    with open(data_path, "wb") as fh:
        fh.write(b"\x80\x05 definitely not a pickle")
    assert store.get(key) is None  # corrupted -> miss
    assert not store.contains(key)  # ... and the remote entry was dropped
    store.put(key, {"fine": "again"})  # recompute-and-recache recovers
    assert store.get(key) == {"fine": "again"}
