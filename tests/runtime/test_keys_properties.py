"""Property-based tests for :mod:`repro.runtime.keys`.

Three families of invariants guard the artifact store's correctness:

* **stability** — a key is a pure function of its payload: same inputs,
  same digest, in this process and in a freshly spawned interpreter
  (Python's randomized ``hash()`` must never leak in);
* **injectivity** — changing any config field that affects the trained
  result changes the digest (a collision would silently serve the wrong
  pipeline);
* **normalization** — the one deliberate non-injectivity: ``None`` and the
  default backend's explicit name are the *same* run, so they must share a
  digest.

Uses hypothesis when available and skips cleanly otherwise (the CI image
installs it; the property generators do not appear anywhere else).
"""

import dataclasses
import subprocess
import sys

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.algorithm import GCoDConfig  # noqa: E402
from repro.runtime.keys import (  # noqa: E402
    canonical_json,
    gcod_key,
    graph_key,
    make_key,
    stable_hash,
    sweep_point_key,
)

#: Strategies per GCoDConfig field, constrained to values __post_init__
#: accepts. Interdependent fields (num_subgraphs >= num_classes) are
#: handled by building classes first and clamping.
CONFIG_FIELDS = {
    "num_classes": st.integers(1, 6),
    "num_groups": st.integers(1, 4),
    "num_subgraphs": st.integers(6, 24),
    "pretrain_epochs": st.integers(0, 50),
    "early_bird": st.booleans(),
    "early_bird_threshold": st.floats(0.01, 0.5),
    "prune_ratio": st.floats(0.0, 0.9),
    "pola_weight": st.floats(0.0, 2.0),
    "admm_iterations": st.integers(0, 6),
    "admm_inner_steps": st.integers(0, 10),
    "patch_threshold": st.integers(0, 40),
    "retrain_epochs": st.integers(0, 50),
    "lr": st.floats(1e-4, 0.5),
    "seed": st.integers(0, 2**31 - 1),
}

configs = st.fixed_dictionaries(CONFIG_FIELDS).map(
    lambda kw: GCoDConfig(**kw)
)

datasets = st.sampled_from(["cora", "citeseer", "pubmed", "nell", "reddit"])
scales = st.one_of(st.none(), st.floats(0.001, 1.0))
profiles = st.sampled_from(["fast", "full"])


@given(configs, datasets, scales, profiles, st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_gcod_key_deterministic_within_process(config, dataset, scale,
                                               profile, seed):
    a = gcod_key(dataset, scale, "gcn", config, None, seed, profile)
    b = gcod_key(dataset, scale, "gcn",
                 dataclasses.replace(config), None, seed, profile)
    assert a.digest == b.digest
    assert a.kind == "gcod"
    assert len(a.digest) == 64


@given(configs, st.sampled_from(sorted(CONFIG_FIELDS)))
@settings(max_examples=60, deadline=None)
def test_gcod_key_injective_on_config_fields(config, field):
    """Perturbing any single config field must change the digest."""
    value = getattr(config, field)
    if isinstance(value, bool):
        changed = not value
    elif isinstance(value, int):
        changed = value + 1
    elif field == "prune_ratio":
        changed = value + 0.05  # stays inside the validated [0, 1)
    else:
        changed = value + 0.25
    if field == "num_classes" and changed > config.num_subgraphs:
        return  # would violate config validation; not a representable run
    other = dataclasses.replace(config, **{field: changed})
    a = gcod_key("cora", 0.1, "gcn", config, None, 0, "fast")
    b = gcod_key("cora", 0.1, "gcn", other, None, 0, "fast")
    assert a.digest != b.digest, f"collision when {field} changed"


@given(configs)
@settings(max_examples=20, deadline=None)
def test_gcod_key_invariant_under_default_backend_spelling(config):
    """None and the default backend's explicit name are the same run."""
    from repro.sparse.kernels import get_backend

    default = get_backend(None).name
    spellings = [
        gcod_key("cora", 0.1, "gcn", config, None, 0, "fast"),
        gcod_key("cora", 0.1, "gcn", config, default, 0, "fast"),
        gcod_key("cora", 0.1, "gcn",
                 dataclasses.replace(config, kernel_backend=default),
                 None, 0, "fast"),
    ]
    assert len({k.digest for k in spellings}) == 1
    # ... but a genuinely different backend is a different run
    other = gcod_key("cora", 0.1, "gcn", config, "reference", 0, "fast")
    assert other.digest != spellings[0].digest


@given(configs, st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_sweep_key_separates_platform_axes(config, seed):
    """bits/hw_scale/axes are part of the point key, not the gcod key."""
    base = dict(dataset="cora", scale=0.1, arch="gcn", config=config,
                kernel_backend=None, seed=seed, profile="fast")
    a = sweep_point_key(**base, bits=32, hw_scale=1.0, tech_node=16,
                        axes={"C": 2})
    assert a.digest == sweep_point_key(**base, bits=32, hw_scale=1.0,
                                       tech_node=16, axes={"C": 2}).digest
    assert a.digest != sweep_point_key(**base, bits=8, hw_scale=1.0,
                                       tech_node=16, axes={"C": 2}).digest
    assert a.digest != sweep_point_key(**base, bits=32, hw_scale=2.0,
                                       tech_node=16, axes={"C": 2}).digest
    assert a.digest != sweep_point_key(**base, bits=32, hw_scale=1.0,
                                       tech_node=7, axes={"C": 2}).digest
    assert a.digest != sweep_point_key(**base, bits=32, hw_scale=1.0,
                                       tech_node=16, axes={"C": 3}).digest


@given(st.dictionaries(
    st.text(st.characters(codec="ascii"), max_size=12),
    st.one_of(st.none(), st.booleans(), st.integers(-10**9, 10**9),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=20)),
    max_size=6,
))
@settings(max_examples=40, deadline=None)
def test_stable_hash_key_order_independent(payload):
    """Dict insertion order never leaks into the digest."""
    reordered = dict(sorted(payload.items(), reverse=True))
    assert stable_hash(payload) == stable_hash(reordered)
    assert canonical_json(payload) == canonical_json(reordered)


def test_digests_stable_across_processes():
    """A spawned interpreter computes the very same digests.

    This is the load-bearing property behind the shared store: worker
    processes (and tomorrow's second machine) must address the same
    artifacts. A handful of representative keys is recomputed in a fresh
    ``python -S``-free subprocess and compared digest-for-digest.
    """
    script = """
import sys
sys.path.insert(0, {src!r})
from repro.algorithm import GCoDConfig
from repro.runtime.keys import gcod_key, graph_key, make_key, sweep_point_key
config = GCoDConfig(num_classes=3, num_subgraphs=9, prune_ratio=0.25,
                    seed=17)
print(graph_key("cora", 0.125, 7).digest)
print(gcod_key("reddit", None, "gin", config, None, 3, "full").digest)
print(sweep_point_key("cora", 0.1, "gcn", config, None, 0, "fast",
                      bits=8, hw_scale=0.5, tech_node=16,
                      axes={{"C": 3, "S": 9}}).digest)
print(make_key("graph", text="snowman \\u2603", value=1.5).digest)
"""
    import repro

    src = repro.__path__[0].rsplit("/repro", 1)[0]
    out = subprocess.run(
        [sys.executable, "-c", script.format(src=src)],
        capture_output=True, text=True, check=True,
    ).stdout.splitlines()

    config = GCoDConfig(num_classes=3, num_subgraphs=9, prune_ratio=0.25,
                        seed=17)
    here = [
        graph_key("cora", 0.125, 7).digest,
        gcod_key("reddit", None, "gin", config, None, 3, "full").digest,
        sweep_point_key("cora", 0.1, "gcn", config, None, 0, "fast",
                        bits=8, hw_scale=0.5, tech_node=16,
                        axes={"C": 3, "S": 9}).digest,
        make_key("graph", text="snowman ☃", value=1.5).digest,
    ]
    assert out == here
