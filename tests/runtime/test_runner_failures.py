"""Runner failure paths: a dying worker must fail loudly and cleanly.

The contract under test: when a GCoD task raises mid-run — in a pool
worker or inline — the caller sees a :class:`GCoDTaskError` naming the
``(dataset, arch)`` task, the store holds *no partial entry* for the
failed run (atomic writes), and a rerun completes using whatever the
surviving workers finished.
"""

import os
import sys

import pytest

from repro.evaluation import EvalContext
from repro.evaluation.report import generate_report
from repro.runtime import counters
from repro.runtime.runner import (
    GCoDTaskError,
    build_task,
    plan_experiments,
    warm_tasks,
)
from repro.runtime.store import ArtifactStore

MICRO_SCALES = {"cora": 0.06, "citeseer": 0.05, "pubmed": 0.012}

#: fig04 depends on all three citation graphs — three pool tasks.
NAMES = ["fig04"]

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="failure injection relies on fork inheriting the monkeypatch",
)


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


@pytest.fixture()
def explode_on_citeseer(monkeypatch):
    """Make run_gcod raise for citeseer only (inherited by forked workers).

    Patched in both namespaces that bind the symbol: the pool worker
    imports it from ``repro.algorithm`` per call, while the serial path
    (``EvalContext.gcod``) bound it at module import.
    """
    import repro.algorithm
    import repro.evaluation.context

    real = repro.algorithm.run_gcod

    def exploding(graph, arch, config):
        if graph.name == "citeseer":
            raise ValueError("injected citeseer failure")
        return real(graph, arch, config)

    monkeypatch.setattr(repro.algorithm, "run_gcod", exploding)
    monkeypatch.setattr(repro.evaluation.context, "run_gcod", exploding)
    return monkeypatch


def _no_partial_files(root: str) -> bool:
    leftovers = []
    for dirpath, _dirs, files in os.walk(root):
        leftovers += [f for f in files if f.startswith(".tmp-")]
    return leftovers == []


def test_pool_worker_failure_surfaces_named_error(tmp_path,
                                                  explode_on_citeseer):
    store = ArtifactStore(str(tmp_path))
    ctx = micro_ctx(store)
    with pytest.raises(GCoDTaskError, match=r"\(citeseer, gcn\)"):
        generate_report(ctx, names=NAMES, jobs=2)

    # No partial entry under a valid name. (Orphaned .tmp-* files are
    # possible here — the pool terminates healthy workers mid-write when
    # one dies — and are reclaimed by `cache clear`; the inline test
    # below asserts the stricter no-temp-files property race-free.)
    assert not store.contains(ctx.gcod_store_key("citeseer", "gcn"))

    # the rerun completes from the surviving cache: citeseer retrains,
    # whatever the healthy workers stored is reused
    explode_on_citeseer.undo()
    plan = plan_experiments(micro_ctx(store), names=NAMES)
    assert ("citeseer", "gcn") in [(t.dataset, t.arch) for t in plan.tasks]
    counters.reset_counters()
    text = generate_report(micro_ctx(store), names=NAMES, jobs=1)
    assert counters.gcod_run_count() == len(plan.tasks) <= 3
    assert "Fig. 4" in text or "fig04" in text.lower()

    # ... and matches a from-scratch serial run byte for byte
    fresh = generate_report(micro_ctx(ArtifactStore(str(tmp_path / "f"))),
                            names=NAMES, jobs=1)
    assert text == fresh


def test_inline_failure_raises_original_error(tmp_path, explode_on_citeseer):
    """The serial path (no pool) propagates the underlying exception."""
    store = ArtifactStore(str(tmp_path))
    ctx = micro_ctx(store)
    with pytest.raises(ValueError, match="injected citeseer failure"):
        generate_report(ctx, names=NAMES, jobs=1)
    assert not store.contains(ctx.gcod_store_key("citeseer", "gcn"))
    assert _no_partial_files(store.root)


def test_warm_tasks_wraps_worker_errors(tmp_path, explode_on_citeseer):
    """Direct warm_tasks callers get the same named-task error."""
    ctx = micro_ctx(ArtifactStore(str(tmp_path)))
    tasks = [build_task(ctx, ds, "gcn") for ds in MICRO_SCALES]
    with pytest.raises(GCoDTaskError, match="citeseer"):
        warm_tasks(tasks, ctx, jobs=3)


def test_serial_warm_tasks_honors_custom_task_config(tmp_path):
    """A custom-config task trains *its* config, not the context's."""
    from dataclasses import replace

    store = ArtifactStore(str(tmp_path))
    ctx = micro_ctx(store)
    task = build_task(ctx, "cora", "gcn")
    custom = replace(
        task, config=replace(task.config, num_classes=3, num_subgraphs=5)
    )
    assert custom.key().digest != ctx.gcod_store_key("cora", "gcn").digest
    warm_tasks([custom], ctx, jobs=1)
    assert store.contains(custom.key())
    assert not store.contains(ctx.gcod_store_key("cora", "gcn"))
    result = store.get(custom.key())
    assert result.config.num_classes == 3
    # idempotent: a second serial warm is a store hit, not a retrain
    counters.reset_counters()
    warm_tasks([custom], ctx, jobs=1)
    assert counters.gcod_run_count() == 0


def test_serial_warm_tasks_honors_custom_task_scale(tmp_path):
    """A task at a different scale trains the graph *its* key names."""
    from dataclasses import replace

    from repro.runtime.keys import graph_key

    store = ArtifactStore(str(tmp_path))
    ctx = micro_ctx(store)
    divergent = replace(build_task(ctx, "cora", "gcn"), scale=0.05)
    assert divergent.scale != ctx.scale_for("cora")
    warm_tasks([divergent], ctx, jobs=1)
    # stored under the task's key, trained on the task's-scale graph
    # (exactly what a pool worker would have produced)
    assert store.contains(divergent.key())
    graph = store.get(graph_key("cora", 0.05, ctx.seed))
    assert graph is not None
    result = store.get(divergent.key())
    assert result.final_graph.num_nodes == graph.num_nodes


def test_task_error_pickles_cleanly():
    """The error type survives the pool's pickle round-trip."""
    import pickle

    err = GCoDTaskError("GCoD task (cora, gcn) failed: ValueError: x")
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, GCoDTaskError)
    assert str(clone) == str(err)
