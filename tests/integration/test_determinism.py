"""Output bytes survive a poisoned wall clock and a booby-trapped RNG.

The static ``determinism`` lint rule bans entropy sources from the
key-derivation and serialization modules; this is the matching *runtime*
regression: freeze ``time.time`` at an absurd value, make every stdlib
``random`` entry point raise, and assert that a cold run still produces
the same artifact bytes as a cold run against the real clock. Catches
what the AST pass cannot — entropy smuggled in through an allowlisted
helper or a third-party call.
"""

import random
import time

from repro.cli import main

GRID = "dataset=cora;C=1;S=2;bits=32,8;hw_scale=0.5,1.0"

#: far-future constant: any artifact byte derived from time.time() would
#: differ from the golden produced against the real clock.
FROZEN_CLOCK = 4.0e9

POISONED_RANDOM_FNS = (
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "seed",
)


def _trap(name):
    def poisoned(*args, **kwargs):
        raise AssertionError(
            f"stdlib random.{name}() was called on an output-producing "
            f"path; seeded numpy generators are the only sanctioned RNG"
        )
    return poisoned


def poison_entropy(mp):
    mp.setattr(time, "time", lambda: FROZEN_CLOCK)
    mp.setattr(time, "time_ns", lambda: int(FROZEN_CLOCK * 1e9))
    for fn in POISONED_RANDOM_FNS:
        mp.setattr(random, fn, _trap(fn))


def cold_sweep_json(cache, out_dir, capsys):
    code = main(["--cache-dir", str(cache), "sweep", "--grid", GRID,
                 "--format", "json", "--out", str(out_dir), "--quiet"])
    capsys.readouterr()  # drain progress chatter
    assert code == 0
    return (out_dir / "custom.json").read_bytes()


def cold_report_json(cache, out_dir, capsys):
    code = main(["--cache-dir", str(cache), "report",
                 "--experiments", "tab03", "--format", "json",
                 "--out", str(out_dir), "--quiet"])
    capsys.readouterr()
    assert code == 0
    # compare the per-experiment artifact, not report.json: the run
    # summary legitimately records wall-clock timings
    return (out_dir / "tab03.json").read_bytes()


def cold_sweep_stdout(cache, capsys):
    code = main(["--cache-dir", str(cache), "sweep", "--grid", GRID])
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_sweep_artifacts_are_entropy_free(tmp_path, capsys, monkeypatch):
    """Cold run on the real clock, then a cold run with frozen time and
    a trapped RNG (separate store): byte-identical ``custom.json``."""
    golden = cold_sweep_json(tmp_path / "c1", tmp_path / "o1", capsys)
    with monkeypatch.context() as mp:
        poison_entropy(mp)
        poisoned = cold_sweep_json(tmp_path / "c2", tmp_path / "o2",
                                   capsys)
    assert poisoned == golden


def test_report_artifacts_are_entropy_free(tmp_path, capsys, monkeypatch):
    """Same contract for ``repro report`` per-experiment JSON files."""
    golden = cold_report_json(tmp_path / "c1", tmp_path / "o1", capsys)
    with monkeypatch.context() as mp:
        poison_entropy(mp)
        poisoned = cold_report_json(tmp_path / "c2", tmp_path / "o2",
                                    capsys)
    assert poisoned == golden


def test_sweep_markdown_stdout_is_entropy_free(tmp_path, capsys,
                                               monkeypatch):
    """The human-facing table too, and warm-over-poisoned-cold reuse:
    a warm rerun in the *same* poisoned store still matches the real-
    clock golden (cache keys contain no entropy either way)."""
    golden = cold_sweep_stdout(tmp_path / "c1", capsys)
    with monkeypatch.context() as mp:
        poison_entropy(mp)
        poisoned = cold_sweep_stdout(tmp_path / "c2", capsys)
        warm = cold_sweep_stdout(tmp_path / "c2", capsys)
    assert poisoned == golden
    assert warm == golden
