"""Integration tests: the full co-design loop on small inputs."""

import numpy as np
import pytest

from repro import (
    GCoDConfig,
    compile_accelerator,
    extract_workload,
    load_dataset,
    run_gcod,
)
from repro.hardware.accelerators import AWBGCN, GCoDAccelerator, HyGCN, pyg_cpu


@pytest.fixture(scope="module")
def full_run():
    graph = load_dataset("cora", scale=0.12, seed=0)
    config = GCoDConfig(
        pretrain_epochs=25, retrain_epochs=15,
        admm_iterations=2, admm_inner_steps=5, seed=0,
    )
    return graph, run_gcod(graph, "gcn", config)


def test_algorithm_to_hardware_loop(full_run):
    graph, result = full_run
    wl = extract_workload(result.final_graph, result.layout, "gcn",
                          paper_scale=True)
    wl_base = extract_workload(graph, None, "gcn", paper_scale=True)
    cpu = pyg_cpu().run(wl_base)
    gcod = GCoDAccelerator().run(wl)
    awb = AWBGCN().run(wl_base)
    hygcn = HyGCN().run(wl_base)
    # The paper's headline orderings, end to end from raw data.
    assert gcod.latency_s < awb.latency_s < hygcn.latency_s < cpu.latency_s
    assert cpu.latency_s / gcod.latency_s > 100.0


def test_accuracy_survives_codesign(full_run):
    _, result = full_run
    assert result.accuracy_final >= result.accuracy_pretrain - 0.05


def test_compile_runs_on_trained_graph(full_run):
    _, result = full_run
    compiled = compile_accelerator(result.final_graph, "gcn",
                                   layout=result.layout)
    report = compiled.run()
    assert report.latency_s > 0
    pes = [c.pes for c in compiled.allocation.chunks]
    assert sum(pes) < compiled.accelerator.pes.num_pes


def test_pipeline_deterministic(full_run):
    graph, result = full_run
    config = GCoDConfig(
        pretrain_epochs=25, retrain_epochs=15,
        admm_iterations=2, admm_inner_steps=5, seed=0,
    )
    result2 = run_gcod(graph, "gcn", config)
    assert result2.accuracy_final == pytest.approx(result.accuracy_final)
    assert (result2.final_graph.adj != result.final_graph.adj).nnz == 0


def test_all_archs_complete_pipeline():
    graph = load_dataset("cora", scale=0.06, seed=1)
    config = GCoDConfig(
        pretrain_epochs=8, retrain_epochs=5, admm_iterations=1,
        admm_inner_steps=3, num_subgraphs=4, seed=0,
    )
    for arch in ("gcn", "gin", "gat", "sage"):
        result = run_gcod(graph, arch, config)
        wl = extract_workload(result.final_graph, result.layout, arch)
        report = GCoDAccelerator().run(wl)
        assert report.latency_s > 0, arch
