"""The ``seed`` and ``tech_node`` axes end-to-end through the engine.

A two-seed micro sweep is the acceptance harness for the variance
columns: every metric gets a mean/std pair, the two seeds really train
two pipelines (distinct artifacts), and the report stays byte-identical
across ``--jobs`` — the new axes must not perturb determinism.
"""

import pytest

from repro.evaluation import EvalContext
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    VARIANCE_METRICS,
    SweepSpec,
    parse_grid,
    run_sweep,
    seed_variance_result,
    sweep_report_text,
)

MICRO_SCALES = {"cora": 0.06}


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


def spec_for(grid):
    return SweepSpec(name="t", title="t", axes=parse_grid(grid))


@pytest.fixture(scope="module")
def seed_sweep(tmp_path_factory):
    store = ArtifactStore(str(tmp_path_factory.mktemp("seed-sweep")))
    spec = spec_for("dataset=cora;C=1;S=2;seed=0,1")
    return spec, run_sweep(micro_ctx(store), spec, jobs=1), store


def test_two_seeds_train_two_pipelines(seed_sweep):
    spec, report, _ = seed_sweep
    assert len(report.results) == 2
    assert report.tasks_executed == 2  # one training per seed
    a, b = report.results
    assert a.coord("seed") == 0 and b.coord("seed") == 1


def test_variance_table_covers_every_metric(seed_sweep):
    spec, report, _ = seed_sweep
    table = seed_variance_result(spec, report.results)
    assert table is not None
    # one group: the points differ only in seed
    assert len(table.rows) == 1
    row = dict(zip(table.headers, table.rows[0]))
    assert row["seeds"] == 2
    for stem, attr in VARIANCE_METRICS:
        values = [float(getattr(r, attr)) for r in report.results]
        mean = sum(values) / 2
        assert row[f"{stem} mean"] == f"{mean:.6g}"
        assert f"{stem} std" in row
    # analytic platform metrics are seed-invariant, so their std is 0 ...
    assert row["area_mm2 std"] == "0" and row["tdp_w std"] == "0"
    # ... and the table sits between the long form and the frontier
    text = sweep_report_text(spec, report.results)
    assert text.index("Sweep:") < text.index("Seed variance:") \
        < text.index("Pareto frontier:")


def test_seed_sweep_parallel_and_warm_runs_are_byte_identical(seed_sweep):
    spec, report, store = seed_sweep
    text = sweep_report_text(spec, report.results)
    warm = run_sweep(micro_ctx(store), spec, jobs=1)
    assert warm.tasks_executed == 0 and warm.cache_hits == [0, 1]
    assert sweep_report_text(spec, warm.results) == text
    jobs2 = run_sweep(micro_ctx(store), spec, jobs=2)
    assert sweep_report_text(spec, jobs2.results) == text


def test_single_seed_grid_emits_no_variance_table(tmp_path):
    spec = spec_for("dataset=cora;C=1;S=2")
    report = run_sweep(micro_ctx(ArtifactStore(str(tmp_path))), spec)
    assert seed_variance_result(spec, report.results) is None
    assert "Seed variance" not in sweep_report_text(spec, report.results)


# ----------------------------------------------------------------------
# tech_node through the engine
# ----------------------------------------------------------------------
def test_tech_node_axis_shares_training_and_scales_budget(tmp_path):
    spec = spec_for("dataset=cora;C=1;S=2;tech_node=7,16,28")
    report = run_sweep(micro_ctx(ArtifactStore(str(tmp_path))), spec)
    assert report.tasks_executed == 1  # silicon node is a platform knob
    by_node = {r.tech_node: r for r in report.results}
    assert sorted(by_node) == [7, 16, 28]
    n7, n16, n28 = by_node[7], by_node[16], by_node[28]
    assert n7.area_mm2 < n16.area_mm2 < n28.area_mm2
    assert n7.tdp_w < n16.tdp_w < n28.tdp_w
    assert n7.gcod_energy_j < n16.gcod_energy_j < n28.gcod_energy_j
    # the clock pins latency (and so speedup) across nodes
    assert n7.gcod_latency_s == n16.gcod_latency_s == n28.gcod_latency_s
    assert n7.speedup_vs_awb == n16.speedup_vs_awb == n28.speedup_vs_awb


def test_default_node_points_match_pre_budget_bytes(tmp_path):
    # a grid without the axis reports tech_node=16 and the same energy
    # numbers as an explicit 16 nm grid: the reference node is identity
    store = ArtifactStore(str(tmp_path))
    plain = run_sweep(micro_ctx(store), spec_for("dataset=cora;C=1;S=2"))
    pinned = run_sweep(micro_ctx(store),
                       spec_for("dataset=cora;C=1;S=2;tech_node=16"))
    a, b = plain.results[0], pinned.results[0]
    assert a.tech_node == b.tech_node == 16
    assert a.gcod_energy_j == b.gcod_energy_j
    assert a.area_mm2 == b.area_mm2 and a.tdp_w == b.tdp_w
