"""Multi-objective point metrics: fig12 parity, objectives, frontiers.

The headline parity: rendering Fig. 12's energy columns *through the
sweep engine* (stored per-phase breakdowns) must match the legacy
experiment loop exactly — and the sweep's DRAM column must equal the
off-chip byte count the platform model reports directly.
"""

import pytest

from repro.errors import ConfigError
from repro.evaluation import EvalContext
from repro.evaluation.experiments import fig12_energy
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    pareto_frontier,
    pareto_result,
    resolve_objectives,
    run_sweep,
)

MICRO_SCALES = {"cora": 0.06, "citeseer": 0.05}
MODELS = ("gcn", "gin")
DATASETS = ("cora", "citeseer")


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


@pytest.fixture(scope="module")
def shared_store(tmp_path_factory):
    return ArtifactStore(str(tmp_path_factory.mktemp("fig12-parity")))


@pytest.fixture(scope="module")
def legacy_fig12(shared_store):
    """The legacy direct loop, trained into the shared store."""
    return fig12_energy.run(micro_ctx(shared_store), models=MODELS,
                            datasets=DATASETS)


@pytest.fixture(scope="module")
def sweep_report(shared_store):
    """The same grid through the sweep engine (shares the trained runs)."""
    spec = fig12_energy.energy_sweep_spec(models=MODELS, datasets=DATASETS)
    return run_sweep(micro_ctx(shared_store), spec, jobs=1)


# ----------------------------------------------------------------------
# fig12 parity: energy and DRAM columns through the sweep engine
# ----------------------------------------------------------------------
def test_fig12_energy_rows_match_legacy_exactly(legacy_fig12, sweep_report):
    assert fig12_energy.rows_from_sweep(sweep_report.results) == \
        legacy_fig12.rows


def test_fig12_sweep_reuses_legacy_training(sweep_report):
    # the (dataset, arch) pipelines were already stored by the legacy run
    assert sweep_report.tasks_executed == 0


def test_dram_column_matches_platform_model(shared_store, sweep_report):
    ctx = micro_ctx(shared_store)
    gcod = ctx.platforms()["gcod"]
    for point in sweep_report.results:
        report = gcod.run(ctx.gcod_workload(point.dataset, point.arch))
        assert point.gcod_dram_bytes == report.offchip_bytes
        assert point.gcod_energy_j == report.energy.total_j


def test_registered_fig12_sweep_covers_the_paper_grid():
    assert fig12_energy.ENERGY_SWEEP.name == "fig12-energy"
    assert fig12_energy.ENERGY_SWEEP.num_points == len(
        fig12_energy.MODELS
    ) * len(fig12_energy.DATASETS)


# ----------------------------------------------------------------------
# the new point metrics are populated and self-consistent
# ----------------------------------------------------------------------
def test_point_metrics_are_multi_objective(sweep_report):
    for r in sweep_report.results:
        assert r.gcod_dram_bytes > 0
        assert r.gcod_energy_j == pytest.approx(
            r.comb_energy.total_j + r.agg_energy.total_j, rel=1e-12
        )
        assert r.agg_sim_cycles > 0
        assert 0.0 <= r.agg_dma_utilization <= 1.0


# ----------------------------------------------------------------------
# selectable objective sets
# ----------------------------------------------------------------------
def test_unknown_objective_names_the_known_set():
    with pytest.raises(ConfigError, match="unknown objective 'speed'"):
        resolve_objectives("speed,energy")
    with pytest.raises(ConfigError, match="choose from"):
        resolve_objectives("nope")


def test_unknown_objective_suggests_near_misses():
    """A case slip, a unit suffix, and a truncation each get the
    intended name back — same did-you-mean UX as grid axes and sweep
    names."""
    with pytest.raises(ConfigError, match="did you mean 'energy'"):
        resolve_objectives("Energy")
    with pytest.raises(ConfigError, match="did you mean 'dram'"):
        resolve_objectives("dram_bytes")
    with pytest.raises(ConfigError, match="did you mean 'speedup'"):
        resolve_objectives("speed")
    # a name nothing resembles gets the plain known-set message
    with pytest.raises(ConfigError) as exc:
        resolve_objectives("zzz")
    assert "did you mean" not in str(exc.value)


def test_duplicate_and_empty_objectives_refused():
    with pytest.raises(ConfigError, match="repeats"):
        resolve_objectives("speedup,speedup")
    with pytest.raises(ConfigError, match="selected nothing"):
        resolve_objectives(" , ")


def test_three_objective_frontier_is_sound(sweep_report):
    from repro.sweep import dominates

    objs = ("speedup", "energy", "dram")
    frontier = pareto_frontier(sweep_report.results, objs)
    assert 0 < len(frontier) <= len(sweep_report.results)
    for a in frontier:
        for b in frontier:
            assert not dominates(a, b, objs)
    ids = {id(r) for r in frontier}
    for r in sweep_report.results:
        if id(r) not in ids:
            assert any(dominates(f, r, objs) for f in frontier)


def test_default_pareto_text_names_the_default_pair(sweep_report):
    spec = fig12_energy.energy_sweep_spec(models=MODELS, datasets=DATASETS)
    result = pareto_result(spec, sweep_report.results)
    assert "Pareto-optimal on (speedup vs AWB-GCN, accuracy)." in \
        result.extra_text
    multi = pareto_result(spec, sweep_report.results,
                          objectives="speedup,energy,dram")
    assert "Pareto-optimal on (speedup vs AWB-GCN, energy, DRAM " \
        "traffic)." in multi.extra_text
