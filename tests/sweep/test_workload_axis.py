"""The ``workload`` sweep axis: expansion, keys, and engine parity.

The acceptance contract: a single-node workload point is byte-identical
(minus its grid coordinates) to the legacy ``dataset``/``arch`` point it
reduces to — and shares that point's training artifacts — while
``jobs=2`` output over a multi-model grid matches ``jobs=1`` exactly.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.evaluation import EvalContext
from repro.runtime import counters
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    expand,
    parse_grid,
    plan_sweep,
    run_sweep,
    sweep_report_text,
)

MICRO_SCALES = {"cora": 0.06, "citeseer": 0.05}

PAIR = "cora/gcn+citeseer/gat"


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


# ----------------------------------------------------------------------
# spec construction and expansion
# ----------------------------------------------------------------------
def test_workload_axis_canonicalizes_shorthand():
    spec = SweepSpec(name="t", title="t",
                     axes={"workload": (" Cora/GCN + citeseer/gat ",)})
    assert spec.axes == (("workload", (PAIR,)),)


def test_workload_axis_rejects_bad_shorthand():
    with pytest.raises(ConfigError, match="not of the form"):
        SweepSpec(name="t", title="t", axes={"workload": ("cora",)})
    with pytest.raises(ConfigError, match="invalid value"):
        SweepSpec(name="t", title="t", axes={"workload": (7,)})


def test_grid_parsing_survives_shorthand_punctuation():
    axes = parse_grid(f"workload={PAIR};bits=32,8")
    assert axes["workload"] == (PAIR,)
    assert axes["bits"] == (32, 8)


def test_workload_axis_excludes_dataset_and_arch():
    for clash in ("dataset", "arch"):
        spec = SweepSpec(
            name="t", title="t",
            axes={"workload": ("cora/gcn",), clash: ("cora",)
                  if clash == "dataset" else ("gcn",)},
        )
        with pytest.raises(ConfigError, match=f"drop the '{clash}' axis"):
            expand(spec, micro_ctx())


def test_expansion_resolves_primary_node_and_scales():
    spec = SweepSpec(name="t", title="t",
                     axes={"workload": (PAIR,), "bits": (32, 8)})
    points = expand(spec, micro_ctx())
    assert len(points) == 2
    for point in points:
        assert point.workload == PAIR
        # the primary (first) node names the point's dataset/arch
        assert point.dataset == "cora" and point.arch == "gcn"
        assert point.workload_scales == (
            ("citeseer", MICRO_SCALES["citeseer"]),
            ("cora", MICRO_SCALES["cora"]),
        )


def test_workload_point_keys_distinct_from_legacy_and_stable():
    ctx = micro_ctx()
    wl = expand(SweepSpec(name="t", title="t",
                          axes={"workload": ("cora/gcn",)}), ctx)[0]
    legacy = expand(SweepSpec(name="t", title="t",
                              axes={"dataset": ("cora",)}), ctx)[0]
    # same resolved model, but the coordinates (and the workload field)
    # must keep the stored artifacts apart
    assert wl.dataset == legacy.dataset and wl.arch == legacy.arch
    assert wl.key().digest != legacy.key().digest
    assert wl.key().digest == expand(
        SweepSpec(name="t", title="t",
                  axes={"workload": ("cora/gcn",)}), ctx)[0].key().digest


def test_gcod_tasks_cover_distinct_pairs_and_share_the_primary():
    ctx = micro_ctx()
    wl = expand(SweepSpec(name="t", title="t",
                          axes={"workload": (PAIR,)}), ctx)[0]
    legacy = expand(SweepSpec(name="t", title="t",
                              axes={"dataset": ("cora",)}), ctx)[0]
    tasks = wl.gcod_tasks()
    assert [(t.dataset, t.arch) for t in tasks] == \
        [("cora", "gcn"), ("citeseer", "gat")]
    # primary task digests identically to the legacy single-model task:
    # the training artifacts are shared between the two grids
    assert tasks[0].key().digest == legacy.gcod_task().key().digest
    assert tasks[1].scale == MICRO_SCALES["citeseer"]
    # duplicate pairs collapse to one training task
    dup = expand(SweepSpec(name="t", title="t",
                           axes={"workload": ("cora/gcn+cora/gcn",)}),
                 ctx)[0]
    assert len(dup.gcod_tasks()) == 1


def test_plan_counts_every_distinct_pair_as_a_dep(tmp_path):
    spec = SweepSpec(name="t", title="t",
                     axes={"workload": (PAIR,), "bits": (32, 8)})
    plan = plan_sweep(micro_ctx(ArtifactStore(str(tmp_path))), spec)
    assert len(plan.points) == 2
    assert plan.deps_total == 2  # two (dataset, arch) pairs, bits shared
    assert len(plan.tasks) == 2


# ----------------------------------------------------------------------
# engine parity
# ----------------------------------------------------------------------
def test_single_node_workload_point_matches_legacy_minus_axes(tmp_path):
    store = ArtifactStore(str(tmp_path))
    counters.reset_counters()
    wl_report = run_sweep(
        micro_ctx(store),
        SweepSpec(name="w", title="w", axes={"workload": ("cora/gcn",)}),
    )
    assert counters.gcod_run_count() == 1
    # the legacy grid reuses the workload grid's training artifact
    legacy_report = run_sweep(
        micro_ctx(store),
        SweepSpec(name="l", title="l", axes={"dataset": ("cora",)}),
    )
    assert counters.gcod_run_count() == 1
    a = dataclasses.asdict(wl_report.results[0])
    b = dataclasses.asdict(legacy_report.results[0])
    assert a.pop("axes") == (("workload", "cora/gcn"),)
    assert b.pop("axes") == (("dataset", "cora"),)
    assert a == b  # every metric byte-identical to the legacy path


def test_multi_model_jobs2_byte_identical_to_serial(tmp_path):
    spec = SweepSpec(name="mt", title="mt",
                     axes={"workload": (PAIR,), "bits": (32, 8)})
    counters.reset_counters()
    serial = run_sweep(micro_ctx(ArtifactStore(str(tmp_path / "s"))),
                       spec, jobs=1)
    assert counters.gcod_run_count() == 2  # one per distinct pair
    assert counters.sweep_point_run_count() == 2
    text = sweep_report_text(spec, serial.results)
    parallel = run_sweep(micro_ctx(ArtifactStore(str(tmp_path / "p"))),
                         spec, jobs=2)
    assert sweep_report_text(spec, parallel.results) == text
    # precision moves the merged numbers: the two points are distinct
    r32, r8 = serial.results
    assert r32.bits == 32 and r8.bits == 8
    assert r32.gcod_latency_s != r8.gcod_latency_s


def test_warm_workload_sweep_is_all_cache_hits(tmp_path):
    store = ArtifactStore(str(tmp_path))
    spec = SweepSpec(name="mt", title="mt", axes={"workload": (PAIR,)})
    cold = run_sweep(micro_ctx(store), spec)
    counters.reset_counters()
    warm = run_sweep(micro_ctx(store), spec)
    assert counters.gcod_run_count() == 0
    assert counters.sweep_point_run_count() == 0
    assert warm.points_evaluated == 0
    assert sweep_report_text(spec, warm.results) == \
        sweep_report_text(spec, cold.results)
