"""Budget constraints: parsing, feasibility, constrained frontiers, CLI.

The pure-parsing layer needs no training; the grid-level assertions run
one throwaway-scale training and fan the platform axes out analytically
(32-bit at ``hw_scale=1`` sits under the 5 W example budget, ``hw_scale=2``
does not — the boundary the `feasible` column must document).
"""

import pytest

from repro.errors import ConfigError
from repro.evaluation import EvalContext
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    describe_constraints,
    is_feasible,
    long_form_result,
    pareto_frontier,
    pareto_result,
    parse_constraints,
    parse_grid,
    resolve_constraints,
    run_sweep,
)

#: One training run; 32-bit x {1x, 2x} PE arrays straddle the 5 W budget.
GRID = "dataset=cora;C=1;S=4;bits=32,8;hw_scale=1,2"


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def test_parse_all_operators_and_notation():
    cons = parse_constraints("power<=5,area<40.5,dram<=2e9,latency>1e-6")
    assert [(c.metric.name, c.op, c.bound) for c in cons] == [
        ("power", "<=", 5.0),
        ("area", "<", 40.5),
        ("dram", "<=", 2e9),
        ("latency", ">", 1e-6),
    ]


def test_parse_is_case_insensitive_and_whitespace_tolerant():
    cons = parse_constraints(" Power <= 5 , AREA<=40 ,")
    assert [c.metric.name for c in cons] == ["power", "area"]


def test_repeated_metric_brackets_a_range():
    cons = parse_constraints("latency>=1e-6,latency<=1e-3")
    assert len(cons) == 2
    assert {c.op for c in cons} == {">=", "<="}


def test_describe_is_stable_and_readable():
    cons = parse_constraints("power<=5,dram<=2e9")
    assert describe_constraints(cons) == \
        "power <= 5 [W], dram <= 2e+09 [bytes]"


def test_unknown_metric_exits_with_did_you_mean():
    with pytest.raises(ConfigError, match="did you mean 'power'"):
        parse_constraints("powr<=5")
    with pytest.raises(ConfigError, match="did you mean 'area'"):
        parse_constraints("Area2<=40")
    with pytest.raises(ConfigError,
                       match="choose from power, area, energy, dram"):
        parse_constraints("zzz<=1")


def test_malformed_clauses_are_usage_errors():
    with pytest.raises(ConfigError, match="not of the form"):
        parse_constraints("power=5")
    with pytest.raises(ConfigError, match="is not a number"):
        parse_constraints("power<=five")
    with pytest.raises(ConfigError, match="selected no constraints"):
        parse_constraints(" , ")


def test_resolve_accepts_all_forms():
    assert resolve_constraints(None) == ()
    cons = parse_constraints("power<=5")
    assert resolve_constraints("power<=5") == cons
    assert resolve_constraints(cons) == cons


# ----------------------------------------------------------------------
# feasibility and constrained frontiers over a real grid
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sweep_report(tmp_path_factory):
    ctx = EvalContext(
        profile="fast",
        store=ArtifactStore(str(tmp_path_factory.mktemp("constraints"))),
    )
    ctx.dataset_scales = {"cora": 0.06}
    spec = SweepSpec(name="budget", title="Budget grid",
                     axes=parse_grid(GRID))
    return spec, run_sweep(ctx, spec, jobs=1)


def test_power_budget_splits_the_grid(sweep_report):
    _, report = sweep_report
    cons = parse_constraints("power<=5")
    feasible = [r for r in report.results if is_feasible(r, cons)]
    infeasible = [r for r in report.results if not is_feasible(r, cons)]
    assert feasible and infeasible  # the grid straddles the budget
    assert all(r.tdp_w <= 5 for r in feasible)
    assert all(r.tdp_w > 5 for r in infeasible)
    # the 2x 32-bit array is what blows the budget
    assert all(r.coord("hw_scale") == 2 and r.bits == 32
               for r in infeasible)


def test_constrained_frontier_is_feasible_and_sound(sweep_report):
    from repro.sweep import dominates

    _, report = sweep_report
    objs = ("speedup", "energy")
    cons = parse_constraints("power<=5")
    frontier = pareto_frontier(report.results, objs, cons)
    assert frontier
    assert all(is_feasible(r, cons) for r in frontier)
    feasible = [r for r in report.results if is_feasible(r, cons)]
    ids = {id(r) for r in frontier}
    for r in feasible:
        if id(r) not in ids:
            assert any(dominates(f, r, objs) for f in frontier)


def test_infeasible_dominators_do_not_prune(sweep_report):
    """Subset-pareto semantics: a budget-busting point never knocks a
    buildable one off the frontier, even if it dominates it outright."""
    _, report = sweep_report
    objs = ("speedup", "latency")
    # constrain to *only* the 2x points' complement: every 1x point is
    # feasible, and the faster 2x designs must not shadow them.
    cons = parse_constraints("power<=5")
    constrained = {id(r) for r in
                   pareto_frontier(report.results, objs, cons)}
    feasible_only = pareto_frontier(
        [r for r in report.results if is_feasible(r, cons)], objs
    )
    assert constrained == {id(r) for r in feasible_only}


def test_long_form_flags_every_point(sweep_report):
    spec, report = sweep_report
    cons = parse_constraints("power<=5")
    table = long_form_result(spec, report.results, cons)
    assert table.headers[-1] == "feasible"
    assert len(table.rows) == len(report.results)  # nothing dropped
    flags = [row[-1] for row in table.rows]
    assert set(flags) == {"yes", "no"}
    n_yes = flags.count("yes")
    assert f"{n_yes} of {len(report.results)} satisfy " \
        f"power <= 5 [W]." in table.extra_text
    # without constraints the column and the sentence are absent
    plain = long_form_result(spec, report.results)
    assert "feasible" not in plain.headers
    assert "satisfy" not in plain.extra_text


def test_pareto_text_names_budget_and_counts(sweep_report):
    spec, report = sweep_report
    result = pareto_result(spec, report.results,
                           objectives="speedup,energy",
                           constraints="power<=5,area<=40")
    assert "feasible design points" in result.extra_text
    assert "under power <= 5 [W], area <= 40 [mm2]." in result.extra_text
    # the unconstrained sentence is untouched (byte-compat with PR 8)
    plain = pareto_result(spec, report.results,
                          objectives="speedup,energy")
    assert "under" not in plain.extra_text
    assert "are Pareto-optimal on (speedup vs AWB-GCN, energy)." in \
        plain.extra_text


def test_unsatisfiable_budget_empties_the_frontier(sweep_report):
    spec, report = sweep_report
    cons = parse_constraints("power<=0.001")
    assert pareto_frontier(report.results, None, cons) == []
    result = pareto_result(spec, report.results, constraints=cons)
    assert result.rows == []
    assert "0 of 0 feasible design points" in result.extra_text


# ----------------------------------------------------------------------
# CLI surface (errors fire before any planning or training)
# ----------------------------------------------------------------------
def run_cli(argv, capsys):
    from repro.cli import main

    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_unknown_constraint_metric_exits_2(capsys):
    code, _, err = run_cli(
        ["sweep", "--grid", "C=1", "--constrain", "powr<=5"], capsys
    )
    assert code == 2
    assert "unknown constraint metric 'powr'" in err
    assert "did you mean 'power'?" in err
    assert "choose from" in err


def test_cli_malformed_constraint_exits_2(capsys):
    code, _, err = run_cli(
        ["sweep", "--grid", "C=1", "--constrain", "power=5"], capsys
    )
    assert code == 2
    assert "not of the form" in err
