"""Property tier for the N-D Pareto frontier (hypothesis).

The frontier feeds design decisions, so its math must hold for *any*
point cloud and *any* objective subset, not just the grids our
experiments happen to produce:

* strict dominance is a strict partial order (irreflexive, asymmetric,
  transitive);
* frontier membership is invariant under permutation of the points and
  of the objective columns;
* no frontier point dominates another frontier point, and every excluded
  point is dominated by some frontier point (soundness + completeness).

Uses hypothesis when available and skips cleanly otherwise (the CI image
installs it).
"""

import dataclasses

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sweep.aggregate import (  # noqa: E402
    OBJECTIVES,
    dominates,
    pareto_frontier,
    resolve_objectives,
)


@dataclasses.dataclass
class FakePoint:
    """Just the metric attributes the objectives read."""

    speedup_vs_awb: float
    accuracy: float
    gcod_energy_j: float
    gcod_dram_bytes: float
    gcod_latency_s: float
    gcod_required_bw_gbps: float
    tdp_w: float
    area_mm2: float


#: Mix a coarse integer lattice into the floats so ties and exact
#: duplicates — the degenerate frontier cases — actually get generated.
metric = st.one_of(
    st.integers(0, 3).map(float),
    st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
)
points = st.builds(FakePoint, metric, metric, metric, metric, metric,
                   metric, metric, metric)
point_lists = st.lists(points, min_size=1, max_size=16)
objective_sets = st.lists(
    st.sampled_from(sorted(OBJECTIVES)), min_size=1, max_size=4, unique=True
).map(tuple)


@settings(max_examples=150, deadline=None)
@given(p=points, objs=objective_sets)
def test_dominance_is_irreflexive(p, objs):
    assert not dominates(p, p, objs)


@settings(max_examples=150, deadline=None)
@given(p=points, q=points, objs=objective_sets)
def test_dominance_is_asymmetric(p, q, objs):
    assert not (dominates(p, q, objs) and dominates(q, p, objs))


@settings(max_examples=150, deadline=None)
@given(p=points, q=points, r=points, objs=objective_sets)
def test_dominance_is_transitive(p, q, r, objs):
    if dominates(p, q, objs) and dominates(q, r, objs):
        assert dominates(p, r, objs)


@settings(max_examples=100, deadline=None)
@given(pts=point_lists, objs=objective_sets)
def test_no_frontier_point_dominates_another(pts, objs):
    frontier = pareto_frontier(pts, objs)
    assert frontier  # a non-empty finite poset has maximal elements
    for a in frontier:
        for b in frontier:
            assert not dominates(a, b, objs)


@settings(max_examples=100, deadline=None)
@given(pts=point_lists, objs=objective_sets)
def test_every_excluded_point_is_dominated(pts, objs):
    frontier = pareto_frontier(pts, objs)
    frontier_ids = {id(p) for p in frontier}
    for p in pts:
        if id(p) not in frontier_ids:
            assert any(dominates(f, p, objs) for f in frontier)


@st.composite
def lists_with_permutation(draw):
    pts = draw(point_lists)
    return pts, draw(st.permutations(pts))


@settings(max_examples=100, deadline=None)
@given(pair=lists_with_permutation(), objs=objective_sets)
def test_frontier_invariant_under_point_permutation(pair, objs):
    pts, shuffled = pair
    assert {id(p) for p in pareto_frontier(pts, objs)} == {
        id(p) for p in pareto_frontier(shuffled, objs)
    }


@settings(max_examples=100, deadline=None)
@given(
    pts=point_lists,
    objs=objective_sets.filter(lambda o: len(o) > 1),
    data=st.data(),
)
def test_frontier_invariant_under_objective_permutation(pts, objs, data):
    shuffled_objs = data.draw(st.permutations(list(objs)))
    assert {id(p) for p in pareto_frontier(pts, objs)} == {
        id(p) for p in pareto_frontier(pts, tuple(shuffled_objs))
    }


@settings(max_examples=100, deadline=None)
@given(pts=point_lists)
def test_single_objective_frontier_is_the_argmax_set(pts):
    frontier = pareto_frontier(pts, ("speedup",))
    best = max(p.speedup_vs_awb for p in pts)
    assert all(p.speedup_vs_awb == best for p in frontier)
    assert len(frontier) == sum(
        1 for p in pts if p.speedup_vs_awb == best
    )


def test_resolve_objectives_accepts_all_forms():
    default = resolve_objectives(None)
    assert tuple(o.name for o in default) == ("speedup", "accuracy")
    from_string = resolve_objectives("speedup, energy ,dram")
    assert tuple(o.name for o in from_string) == ("speedup", "energy",
                                                  "dram")
    assert resolve_objectives(from_string) == from_string
