"""Failure-injection tier: interrupted sweeps resume exactly.

The acceptance contract (ISSUE 5): kill a 24-point sweep after 8 points,
and the stored manifest must name exactly the 16 missing points;
``--resume`` must evaluate exactly those 16 (counter-asserted on both
sides of the ledger: 16 runs, 8 skips) and produce output byte-identical
to an uninterrupted run. A pooled variant kills a *worker* mid-grid and
asserts the same end state.
"""

import pytest

from repro.errors import ConfigError
from repro.evaluation import EvalContext
from repro.runtime import counters
from repro.runtime.runner import GCoDTaskError
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    load_manifest,
    run_sweep,
    sweep_report_text,
)
from repro.sweep import engine as eng
from repro.sweep.manifest import manifest_key, write_manifest

MICRO_SCALES = {"cora": 0.06, "citeseer": 0.05}

#: 24 points, 4 unique training configs (platform axes share pipelines).
SPEC = SweepSpec(
    name="resume-grid",
    title="resume grid",
    axes={
        "C": (1, 2),
        "S": (2, 3),
        "bits": (32, 8),
        "hw_scale": (0.5, 1.0, 2.0),
    },
)


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


@pytest.fixture(scope="module")
def reference_text(tmp_path_factory):
    """The bytes of an uninterrupted serial run of SPEC."""
    root = str(tmp_path_factory.mktemp("resume-ref"))
    report = run_sweep(micro_ctx(ArtifactStore(root)), SPEC, jobs=1)
    return sweep_report_text(SPEC, report.results)


def test_interrupted_sweep_resumes_exactly(tmp_path, monkeypatch,
                                           reference_text):
    store = ArtifactStore(str(tmp_path))
    ctx = micro_ctx(store)

    # ------------------------------------------------------------------
    # kill the sweep after 8 evaluated points
    # ------------------------------------------------------------------
    real_evaluate = eng._PointEvaluator.evaluate
    evaluated = []

    def dying_evaluate(self, point):
        if len(evaluated) >= 8:
            raise RuntimeError("power cut after 8 points")
        evaluated.append(point.label())
        return real_evaluate(self, point)

    monkeypatch.setattr(eng._PointEvaluator, "evaluate", dying_evaluate)
    with pytest.raises(GCoDTaskError, match="power cut after 8 points"):
        run_sweep(ctx, SPEC, jobs=1)
    monkeypatch.undo()

    # ------------------------------------------------------------------
    # the manifest names exactly the 16 missing points
    # ------------------------------------------------------------------
    fresh = micro_ctx(store)
    manifest = load_manifest(store, fresh, SPEC)
    assert manifest is not None
    assert len(manifest.planned) == 24
    assert not manifest.complete
    missing = manifest.missing_indices(store)
    assert missing == list(range(8, 24))
    assert manifest.missing_labels(store) == manifest.labels[8:]
    assert manifest.done == manifest.planned[:8]

    # ------------------------------------------------------------------
    # --resume evaluates exactly the missing 16 (both ledger sides)
    # ------------------------------------------------------------------
    counters.reset_counters()
    report = run_sweep(micro_ctx(store), SPEC, jobs=1, resume=True)
    assert counters.sweep_point_run_count() == 16
    assert counters.sweep_point_skip_count() == 8
    assert report.points_evaluated == 16
    assert report.cache_hits == list(range(8))
    assert sweep_report_text(SPEC, report.results) == reference_text

    manifest = load_manifest(store, micro_ctx(store), SPEC)
    assert manifest.complete
    assert manifest.done == manifest.planned


def test_killed_worker_leaves_resumable_manifest(tmp_path, monkeypatch,
                                                 reference_text):
    """Pooled variant: a *worker* raises mid-grid; resume completes."""
    store = ArtifactStore(str(tmp_path))

    # Deterministic by point identity (workers race on counts): every
    # 8-bit double-scale point dies. The patch reaches fork-started
    # workers because they inherit the parent's module state.
    real_evaluate = eng._PointEvaluator.evaluate

    def dying_evaluate(self, point):
        if point.bits == 8 and point.hw_scale == 2.0:
            raise RuntimeError("worker shot at bits=8, hw_scale=2.0")
        return real_evaluate(self, point)

    monkeypatch.setattr(eng._PointEvaluator, "evaluate", dying_evaluate)
    with pytest.raises(GCoDTaskError, match="sweep point .* failed"):
        run_sweep(micro_ctx(store), SPEC, jobs=2)
    monkeypatch.undo()

    fresh = micro_ctx(store)
    manifest = load_manifest(store, fresh, SPEC)
    assert manifest is not None and not manifest.complete
    missing = set(manifest.missing_indices(store))
    shot = {
        i for i, point in enumerate(eng.expand(SPEC, fresh))
        if point.bits == 8 and point.hw_scale == 2.0
    }
    # every shot point is missing; anything else missing was merely
    # in-flight when the pool tore down — resume covers both.
    assert shot <= missing

    counters.reset_counters()
    report = run_sweep(micro_ctx(store), SPEC, jobs=1, resume=True)
    assert counters.sweep_point_run_count() == len(missing)
    assert counters.sweep_point_skip_count() == 24 - len(missing)
    assert sweep_report_text(SPEC, report.results) == reference_text


def test_resume_without_store_refuses():
    with pytest.raises(ConfigError, match="--resume needs the artifact"):
        run_sweep(micro_ctx(store=None), SPEC, resume=True)


def test_resume_without_manifest_refuses(tmp_path):
    store = ArtifactStore(str(tmp_path))
    with pytest.raises(ConfigError, match="nothing to resume"):
        run_sweep(micro_ctx(store), SPEC, resume=True)


def test_resume_with_stale_manifest_refuses(tmp_path):
    """A manifest whose planned points no longer match must not resume."""
    store = ArtifactStore(str(tmp_path))
    spec = SweepSpec(name="tiny", title="tiny", axes={"C": (1,)})
    ctx = micro_ctx(store)
    run_sweep(ctx, spec, jobs=1)
    manifest = load_manifest(store, ctx, spec)
    manifest.planned = ["0" * 64]  # as if written by different code
    write_manifest(store, ctx, spec, manifest)
    with pytest.raises(ConfigError, match="rerun without --resume"):
        run_sweep(micro_ctx(store), spec, resume=True)


def test_manifests_shared_across_name_spellings(tmp_path):
    """A registered name and an ad-hoc grid of the same axes share one
    manifest (its key ignores the spec name)."""
    store = ArtifactStore(str(tmp_path))
    ctx = micro_ctx(store)
    named = SweepSpec(name="named", title="n", axes={"C": (1, 2)})
    adhoc = SweepSpec(name="custom", title="c", axes={"C": (1, 2)})
    assert manifest_key(ctx, named).digest == manifest_key(ctx, adhoc).digest
    run_sweep(ctx, named, jobs=1)
    # the ad-hoc spelling resumes the named sweep's manifest
    report = run_sweep(micro_ctx(store), adhoc, jobs=1, resume=True)
    assert report.points_evaluated == 0
    assert len(report.cache_hits) == 2
