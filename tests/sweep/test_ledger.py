"""Distributed-sweep tier: the shared-store work ledger.

The acceptance contract (ISSUE 6): two workers pointed at one shared
store and the same grid must split the points with *zero duplicate
evaluations* (counter-asserted: their ``sweep_point_runs`` sum to the
grid size) and each worker's final aggregation must be byte-identical to
a single-host serial sweep. Stale claims of dead workers expire and get
re-claimed, so a pulled plug never strands a point.
"""

import threading
import time

import pytest

from repro.evaluation import EvalContext
from repro.runtime.runner import pool_context
from repro.runtime.server import make_store_server
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    WorkLedger,
    run_sweep,
    sweep_report_text,
)
from repro.sweep import engine as eng

MICRO_SCALES = {"cora": 0.06}

#: 4 points, 2 unique training configs (bits is a platform axis).
SPEC = SweepSpec(
    name="ledger-grid",
    title="ledger grid",
    axes={
        "C": (1, 2),
        "bits": (32, 8),
    },
)


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """``(text, points, gcod_runs)`` of a single-host serial run of SPEC."""
    root = str(tmp_path_factory.mktemp("ledger-ref"))
    report = run_sweep(micro_ctx(ArtifactStore(root)), SPEC, jobs=1)
    assert report.worker is None  # no ledger on a plain local store
    assert report.ledger_stats is None
    return (sweep_report_text(SPEC, report.results),
            report.points_evaluated, report.gcod_runs)


# ---------------------------------------------------------------------------
# WorkLedger unit behavior (real store, no sweep)
# ---------------------------------------------------------------------------

def test_claim_release_and_loss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    a = WorkLedger(store, worker="a")
    b = WorkLedger(store, worker="b")
    assert a.try_claim("point-1")
    assert not b.try_claim("point-1")  # live claim: b loses
    assert b.stats.lost == 1
    a.release("point-1")
    assert b.try_claim("point-1")  # released: b wins the re-claim
    assert a.stats.claimed == 1 and b.stats.claimed == 1


def test_stale_claim_is_broken(tmp_path):
    store = ArtifactStore(str(tmp_path))
    # a dead worker's claim: old enough that its own TTL has lapsed
    store.claim("point-1", {"worker": "dead", "claimed_at": time.time() - 99,
                            "ttl_s": 1.0})
    b = WorkLedger(store, worker="b")
    assert b.try_claim("point-1")
    assert b.stats.stale_reclaimed == 1
    assert store.read_claim("point-1")["worker"] == "b"


def test_garbled_claim_is_stale(tmp_path):
    store = ArtifactStore(str(tmp_path))
    store.claim("point-1", {"worker": "weird", "claimed_at": "not-a-time"})
    b = WorkLedger(store, worker="b")
    assert b.try_claim("point-1")  # unparseable metadata counts as stale
    assert b.stats.stale_reclaimed == 1


def test_drain_works_everything_once_and_releases(tmp_path):
    store = ArtifactStore(str(tmp_path))
    ledger = WorkLedger(store, worker="solo", poll_s=0.01)
    done = set()
    worked = []
    count = ledger.drain(
        {"w-1": 1, "w-2": 2, "w-3": 3},
        is_done=lambda item: item in done,
        work=lambda item: (worked.append(item), done.add(item)),
    )
    assert count == 3 and sorted(worked) == [1, 2, 3]
    # every claim was released on the way out
    assert store.backend.list_names("claim") == []
    assert ledger.stats.claimed == 3 and ledger.stats.released == 3


def test_drain_waits_out_a_live_peer(tmp_path):
    """A fully-claimed pending set polls until the peer finishes."""
    store = ArtifactStore(str(tmp_path))
    store.claim("w-1", {"worker": "peer", "claimed_at": time.time(),
                        "ttl_s": 600.0})
    done = set()

    def peer_finishes():
        time.sleep(0.15)
        done.add(1)
        store.release_claim("w-1")

    thread = threading.Thread(target=peer_finishes)
    thread.start()
    ledger = WorkLedger(store, worker="me", poll_s=0.02)
    count = ledger.drain({"w-1": 1}, is_done=lambda i: i in done,
                         work=lambda i: pytest.fail("peer owned this item"))
    thread.join()
    assert count == 0  # observed the peer's completion, did nothing
    assert ledger.stats.polls >= 1 and ledger.stats.waited_s > 0


# ---------------------------------------------------------------------------
# two real workers, one shared store: exactly-once, byte-identical
# ---------------------------------------------------------------------------

def _sweep_worker(root, barrier, queue):
    ctx = micro_ctx(ArtifactStore(root))
    barrier.wait()
    report = run_sweep(ctx, SPEC, ledger=True)
    queue.put({
        "worker": report.worker,
        "points_evaluated": report.points_evaluated,
        "gcod_runs": report.gcod_runs,
        "ledger": report.ledger_stats,
        "text": sweep_report_text(SPEC, report.results),
    })


def test_two_workers_share_one_store_exactly_once(tmp_path, reference):
    ref_text, ref_points, ref_runs = reference
    mp = pool_context()
    barrier = mp.Barrier(2)
    queue = mp.Queue()
    procs = [
        mp.Process(target=_sweep_worker, args=(str(tmp_path), barrier, queue))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=300) for _ in procs]
    for p in procs:
        p.join(timeout=300)
        assert p.exitcode == 0

    # exactly-once: the workers' evaluation counters sum to the grid
    # size — zero duplicates, zero holes
    assert sum(r["points_evaluated"] for r in results) == ref_points == 4
    # the de-duplicated trainings were also split exactly once
    assert sum(r["gcod_runs"] for r in results) == ref_runs
    # each worker aggregated the full grid, byte-identical to serial
    for r in results:
        assert r["text"] == ref_text
        assert r["worker"] is not None
        assert r["ledger"] is not None
    # no claims left behind
    store = ArtifactStore(str(tmp_path))
    assert store.backend.list_names("claim") == []
    # ... and a warm rerun on the shared store evaluates nothing
    warm = run_sweep(micro_ctx(ArtifactStore(str(tmp_path))), SPEC,
                     ledger=True)
    assert warm.points_evaluated == 0
    assert sweep_report_text(SPEC, warm.results) == ref_text


def test_ledger_auto_activates_on_served_store(tmp_path, reference):
    ref_text, _ref_points, _ref_runs = reference
    server = make_store_server(str(tmp_path / "served"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        report = run_sweep(micro_ctx(ArtifactStore(server.url)), SPEC)
        # no ledger flag anywhere: the http(s) locator alone switched the
        # engine into ledger mode
        assert report.worker is not None
        assert report.ledger_stats is not None
        assert report.ledger_stats["claimed"] >= 4
        assert sweep_report_text(SPEC, report.results) == ref_text
        assert ArtifactStore(server.url).backend.list_names("claim") == []
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_dead_workers_stale_claim_is_reclaimed(tmp_path, reference):
    ref_text, _ref_points, _ref_runs = reference
    store = ArtifactStore(str(tmp_path))
    ctx = micro_ctx(store)
    plan = eng.plan_sweep(ctx, SPEC)
    # a worker died holding this point: its claim is older than its TTL
    assert store.claim(
        "point-" + plan.keys[0].digest,
        {"worker": "unplugged", "claimed_at": time.time() - 99, "ttl_s": 1.0},
    )
    ledger = WorkLedger(store, worker="survivor", poll_s=0.05)
    report = run_sweep(ctx, SPEC, ledger=ledger)
    # the sweep completed the dead worker's point too
    assert report.points_evaluated == 4
    assert report.ledger_stats["stale_reclaimed"] >= 1
    assert sweep_report_text(SPEC, report.results) == ref_text
    assert store.backend.list_names("claim") == []
