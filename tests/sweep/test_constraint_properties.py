"""Property tier for constrained frontiers and seed variance (hypothesis).

The load-bearing algebra for *any* point cloud and *any* budget:

* the constrained frontier is a subset of the feasible set;
* every feasible member of the unconstrained frontier survives
  constraining (nothing dominated it globally, so nothing dominates it
  among the feasible subset either);
* when every constraint bounds a *minimized objective* from above —
  the aligned case the acceptance command exercises — subset-pareto
  coincides exactly with post-hoc filtering of the unconstrained
  frontier;
* constrained-frontier membership is invariant under point permutation;
* with a single seed per group, the variance table reduces to the exact
  point values with a population std of exactly 0.
"""

import dataclasses

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sweep.aggregate import (  # noqa: E402
    VARIANCE_METRICS,
    pareto_frontier,
    seed_variance_result,
)
from repro.sweep.constraints import (  # noqa: E402
    CONSTRAINT_METRICS,
    Constraint,
    is_feasible,
)
from repro.sweep.spec import SweepSpec  # noqa: E402


@dataclasses.dataclass
class FakePoint:
    """Just the metric attributes objectives and constraints read."""

    speedup_vs_awb: float
    accuracy: float
    gcod_energy_j: float
    gcod_dram_bytes: float
    gcod_latency_s: float
    gcod_required_bw_gbps: float
    tdp_w: float
    area_mm2: float


metric = st.one_of(
    st.integers(0, 3).map(float),
    st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
)
points = st.builds(FakePoint, metric, metric, metric, metric, metric,
                   metric, metric, metric)
point_lists = st.lists(points, min_size=1, max_size=16)

#: Bounds drawn from the same range as the metrics, so feasible sets of
#: every size (empty, partial, total) actually get generated.
constraints = st.builds(
    Constraint,
    metric=st.sampled_from(sorted(CONSTRAINT_METRICS)).map(
        CONSTRAINT_METRICS.get
    ),
    op=st.sampled_from(["<=", "<", ">=", ">"]),
    bound=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
)
constraint_sets = st.lists(constraints, min_size=1, max_size=3).map(tuple)

OBJS = ("speedup", "energy")


@settings(max_examples=150, deadline=None)
@given(pts=point_lists, cons=constraint_sets)
def test_constrained_frontier_is_feasible(pts, cons):
    for r in pareto_frontier(pts, OBJS, cons):
        assert is_feasible(r, cons)


@settings(max_examples=150, deadline=None)
@given(pts=point_lists, cons=constraint_sets)
def test_feasible_unconstrained_winners_survive_constraining(pts, cons):
    constrained = {id(r) for r in pareto_frontier(pts, OBJS, cons)}
    for r in pareto_frontier(pts, OBJS):
        if is_feasible(r, cons):
            assert id(r) in constrained


@settings(max_examples=150, deadline=None)
@given(pts=point_lists, cons=constraint_sets)
def test_constrained_equals_frontier_of_feasible_subset(pts, cons):
    feasible = [r for r in pts if is_feasible(r, cons)]
    assert {id(r) for r in pareto_frontier(pts, OBJS, cons)} == {
        id(r) for r in pareto_frontier(feasible, OBJS) if feasible
    }


#: The aligned case: upper bounds on metrics that are also minimized
#: objectives. Any dominator of a feasible point is then itself feasible,
#: so subset-pareto must coincide with post-hoc filtering.
aligned_constraints = st.lists(
    st.builds(
        Constraint,
        metric=st.sampled_from(["power", "energy"]).map(
            CONSTRAINT_METRICS.get
        ),
        op=st.sampled_from(["<=", "<"]),
        bound=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=2,
).map(tuple)

ALIGNED_OBJS = ("speedup", "energy", "power")


@settings(max_examples=150, deadline=None)
@given(pts=point_lists, cons=aligned_constraints)
def test_aligned_constraints_match_posthoc_filtering(pts, cons):
    subset = pareto_frontier(pts, ALIGNED_OBJS, cons)
    posthoc = [
        r for r in pareto_frontier(pts, ALIGNED_OBJS)
        if is_feasible(r, cons)
    ]
    assert {id(r) for r in subset} == {id(r) for r in posthoc}


@st.composite
def lists_with_permutation(draw):
    pts = draw(point_lists)
    return pts, draw(st.permutations(pts))


@settings(max_examples=100, deadline=None)
@given(pair=lists_with_permutation(), cons=constraint_sets)
def test_constrained_membership_invariant_under_permutation(pair, cons):
    pts, shuffled = pair
    assert {id(r) for r in pareto_frontier(pts, OBJS, cons)} == {
        id(r) for r in pareto_frontier(shuffled, OBJS, cons)
    }


# ----------------------------------------------------------------------
# seed variance degenerates exactly with one seed per group
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FakeSeedPoint(FakePoint):
    balance: float
    bw_reduction_vs_hygcn: float
    agg_sim_cycles: float
    agg_dma_utilization: float
    axes: tuple = ()

    def coord(self, axis, default=None):
        for name, value in self.axes:
            if name == axis:
                return value
        return default


seed_points = st.builds(
    FakeSeedPoint, metric, metric, metric, metric, metric, metric,
    metric, metric, metric, metric, metric, metric,
)


@settings(max_examples=60, deadline=None)
@given(pts=st.lists(seed_points, min_size=1, max_size=6))
def test_single_seed_variance_is_exact(pts):
    spec = SweepSpec(name="t", title="t",
                     axes={"C": tuple(range(1, len(pts) + 1)), "seed": (0,)})
    for i, p in enumerate(pts):
        p.axes = (("C", i + 1), ("seed", 0))
    table = seed_variance_result(spec, pts)
    assert table is not None
    assert table.headers[:2] == ("C", "seeds")
    assert len(table.rows) == len(pts)  # one group per C value
    for row, p in zip(table.rows, pts):
        assert row[1] == 1  # a single seed in every group
        cells = row[2:]
        for (stem, attr), mean, std in zip(
            VARIANCE_METRICS, cells[0::2], cells[1::2]
        ):
            assert mean == f"{float(getattr(p, attr)):.6g}"
            assert std == "0"  # population std: exactly zero, not tiny


def test_no_seed_axis_means_no_table():
    spec = SweepSpec(name="t", title="t", axes={"C": (1, 2)})
    assert seed_variance_result(spec, []) is None
