"""SweepSpec construction, --grid parsing, and grid expansion."""

import pytest

from repro.errors import ConfigError, UnknownDatasetError, UnknownSweepError
from repro.evaluation import EvalContext
from repro.sweep import (
    AXES,
    SweepSpec,
    all_sweeps,
    expand,
    get_sweep,
    parse_grid,
    register_sweep,
    sweep_names,
)


def ctx():
    return EvalContext(profile="fast")


# ----------------------------------------------------------------------
# spec construction / validation
# ----------------------------------------------------------------------
def test_spec_normalizes_axes_and_counts_points():
    spec = SweepSpec(name="t", title="t",
                     axes={"dataset": ["cora"], "C": [1, 2], "S": (8, 12)})
    assert spec.axis_names == ("dataset", "C", "S")
    assert spec.num_points == 4
    assert spec.axes[1] == ("C", (1, 2))  # values coerced to tuples
    assert "4 points" in spec.describe()


def test_spec_rejects_unknown_axis_and_empty_values():
    with pytest.raises(ConfigError, match="unknown sweep axis"):
        SweepSpec(name="t", title="t", axes={"chunkiness": (1,)})
    with pytest.raises(ConfigError, match="no values"):
        SweepSpec(name="t", title="t", axes={"C": ()})
    with pytest.raises(ConfigError, match="declares no axes"):
        SweepSpec(name="t", title="t", axes={})


def test_unknown_axis_error_suggests_near_miss():
    """Case slips and one-edit typos get a did-you-mean plus the full
    known-axis list — in parse_grid and SweepSpec construction alike."""
    from repro.sweep.spec import parse_grid

    with pytest.raises(ConfigError, match=r"did you mean 'C'\?"):
        parse_grid("c=1,2")
    with pytest.raises(ConfigError, match=r"did you mean 'hw_scale'\?"):
        parse_grid("hwscale=2")
    with pytest.raises(ConfigError, match=r"did you mean 'dataset'\?"):
        SweepSpec(name="t", title="t", axes={"DATASET": ("cora",)})
    # hopeless typos still list every known axis, without a bogus guess
    with pytest.raises(ConfigError, match="choose from dataset, arch, workload, C"):
        parse_grid("zzz=1")


def test_spec_validates_axis_values():
    with pytest.raises(ConfigError):
        SweepSpec(name="t", title="t", axes={"bits": (16,)})
    with pytest.raises(ConfigError):
        SweepSpec(name="t", title="t", axes={"sparsity": (1.5,)})
    with pytest.raises(ConfigError):
        SweepSpec(name="t", title="t", axes={"hw_scale": (0.0,)})
    with pytest.raises(ConfigError):
        SweepSpec(name="t", title="t", axes={"C": ("many",)})


def test_spec_is_hashable_and_immutable():
    spec = SweepSpec(name="t", title="t", axes={"C": (1, 2)})
    assert hash(spec) == hash(
        SweepSpec(name="t", title="t", axes={"C": (1, 2)})
    )
    with pytest.raises(AttributeError):
        spec.name = "other"


# ----------------------------------------------------------------------
# --grid parsing
# ----------------------------------------------------------------------
def test_parse_grid_roundtrip():
    axes = parse_grid("dataset=cora,reddit; C=1,2,3,4 ;S=8,12,16,20")
    assert axes == {
        "dataset": ("cora", "reddit"),
        "C": (1, 2, 3, 4),
        "S": (8, 12, 16, 20),
    }
    spec = SweepSpec(name="g", title="g", axes=axes)
    assert spec.num_points == 32


def test_parse_grid_coerces_types():
    axes = parse_grid("sparsity=0.1,0.2;bits=8,32;hw_scale=0.5,2")
    assert axes["sparsity"] == (0.1, 0.2)
    assert axes["bits"] == (8, 32)
    assert axes["hw_scale"] == (0.5, 2.0)
    assert all(isinstance(v, float) for v in axes["hw_scale"])


@pytest.mark.parametrize("bad", [
    "", "C", "C=", "nope=1", "C=1;C=2", "C=x", "bits=12",
])
def test_parse_grid_rejects_malformed(bad):
    with pytest.raises(ConfigError):
        parse_grid(bad)


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------
def test_expand_grid_order_is_product_order():
    spec = SweepSpec(name="t", title="t",
                     axes={"dataset": ("cora", "citeseer"), "C": (1, 2)})
    points = expand(spec, ctx())
    assert [p.axes for p in points] == [
        (("dataset", "cora"), ("C", 1)),
        (("dataset", "cora"), ("C", 2)),
        (("dataset", "citeseer"), ("C", 1)),
        (("dataset", "citeseer"), ("C", 2)),
    ]
    # context defaults flow in: scale, seed, profile, resolved backend
    assert points[0].scale == ctx().scale_for("cora")
    assert points[0].kernel_backend == "vectorized"
    assert points[0].bits == 32 and points[0].hw_scale == 1.0


def test_expand_clamps_subgraphs_to_classes():
    spec = SweepSpec(name="t", title="t", axes={"C": (4,), "S": (2,)})
    point = expand(spec, ctx())[0]
    assert point.config.num_classes == 4
    assert point.config.num_subgraphs == 4  # clamped up from S=2
    assert point.axes == (("C", 4), ("S", 2))  # raw coordinate preserved


def test_expand_clamps_default_subgraphs_when_only_c_sweeps():
    # default num_subgraphs is 8; C=12 alone must not build an invalid config
    spec = SweepSpec(name="t", title="t", axes={"C": (12,)})
    point = expand(spec, ctx())[0]
    assert point.config.num_subgraphs == 12


def test_expand_applies_sparsity_and_backend():
    spec = SweepSpec(
        name="t", title="t",
        axes={"sparsity": (0.3,), "kernel_backend": ("reference",)},
    )
    point = expand(spec, ctx())[0]
    assert point.config.prune_ratio == 0.3
    assert point.config.kernel_backend == "reference"
    assert point.kernel_backend == "reference"


def test_expand_rejects_unknown_dataset_eagerly():
    spec = SweepSpec(name="t", title="t", axes={"dataset": ("atlantis",)})
    with pytest.raises(UnknownDatasetError):
        expand(spec, ctx())


def test_expand_rejects_unknown_arch_eagerly():
    spec = SweepSpec(name="t", title="t", axes={"arch": ("gcn", "gcnn")})
    with pytest.raises(ConfigError, match="unknown architecture"):
        expand(spec, ctx())


def test_expand_normalizes_name_case():
    # "Cora"/"GCN" must share cache keys (and table cells) with the
    # lowercase spellings: load_dataset lowercases, so same numerics.
    upper = expand(SweepSpec(name="t", title="t",
                             axes={"dataset": ("Cora",), "arch": ("GCN",)}),
                   ctx())[0]
    lower = expand(SweepSpec(name="t", title="t",
                             axes={"dataset": ("cora",), "arch": ("gcn",)}),
                   ctx())[0]
    assert upper.dataset == "cora" and upper.arch == "gcn"
    assert upper.axes == lower.axes
    assert upper.key().digest == lower.key().digest
    assert upper.gcod_task().key().digest == lower.gcod_task().key().digest


def test_point_keys_distinct_across_grid_and_stable():
    spec = SweepSpec(name="t", title="t",
                     axes={"C": (1, 2), "S": (2, 4), "bits": (8, 32)})
    points = expand(spec, ctx())
    digests = [p.key().digest for p in points]
    assert len(set(digests)) == len(points)
    assert digests == [p.key().digest for p in expand(spec, ctx())]


def test_clamped_duplicate_configs_still_get_distinct_keys():
    # (C=4, S=2) and (C=4, S=4) resolve to the same config; the raw
    # coordinates keep their stored results distinct.
    spec = SweepSpec(name="t", title="t", axes={"C": (4,), "S": (2, 4)})
    a, b = expand(spec, ctx())
    assert a.config == b.config
    assert a.gcod_task().key().digest == b.gcod_task().key().digest
    assert a.key().digest != b.key().digest


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_builtin_sweeps_are_registered():
    assert {"ablation-cs", "tab05-scale", "fig12-energy"} <= \
        set(sweep_names())
    assert get_sweep("ablation-cs").num_points == 32
    assert get_sweep("tab05-scale").num_points == 6
    assert get_sweep("fig12-energy").num_points == 20
    assert all(isinstance(s, SweepSpec) for s in all_sweeps())


def test_unknown_sweep_raises_with_choices():
    with pytest.raises(UnknownSweepError, match="choose from"):
        get_sweep("nope")
    with pytest.raises(UnknownSweepError, match="did you mean 'tab05-scale'"):
        get_sweep("tab05scale")


def test_duplicate_sweep_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_sweep(SweepSpec(name="ablation-cs", title="dup",
                                 axes={"C": (1,)}))


# ----------------------------------------------------------------------
# axis-coercion diagnostics and the budget/seed axes
# ----------------------------------------------------------------------
def test_coerce_errors_name_value_and_type():
    """Both failure paths — uncastable and out-of-range — use the one
    message format naming the offending value *and its type* (a list and
    its string spelling render identically under !r alone)."""
    with pytest.raises(ConfigError,
                       match=r"axis 'C': invalid value 'x' of type str"):
        parse_grid("C=x")
    with pytest.raises(ConfigError,
                       match=r"axis 'bits': invalid value '12' of type "
                             r"str \(platform precision: 8 or 32\)"):
        parse_grid("bits=12")
    with pytest.raises(ConfigError,
                       match=r"axis 'bits': invalid value \[8\] of type "
                             r"list"):
        SweepSpec(name="t", title="t", axes={"bits": ([8],)})
    with pytest.raises(ConfigError,
                       match=r"invalid value 1.5 of type float"):
        SweepSpec(name="t", title="t", axes={"sparsity": (1.5,)})


def test_tech_node_axis_parses_and_expands():
    axes = parse_grid("tech_node=7,16,28")
    assert axes["tech_node"] == (7, 16, 28)
    points = expand(SweepSpec(name="t", title="t", axes=axes), ctx())
    assert [p.tech_node for p in points] == [7, 16, 28]
    # without the axis every point sits at the 16 nm reference
    default = expand(SweepSpec(name="t", title="t", axes={"C": (1,)}),
                     ctx())[0]
    assert default.tech_node == 16
    with pytest.raises(ConfigError, match=r"axis 'tech_node'"):
        parse_grid("tech_node=10")


def test_tech_node_axis_matches_budget_registry():
    # the axis validator spells the node set literally (to stay
    # import-light); it must never drift from the budget models'
    from repro.hardware.budget import TECH_NODES

    ok = [nm for nm in (5, 7, 10, 12, 16, 22, 28, 45)
          if nm in TECH_NODES]
    axis = AXES["tech_node"]
    assert [nm for nm in (5, 7, 10, 12, 16, 22, 28, 45)
            if axis.validate(nm)] == ok


def test_seed_axis_varies_training_seed_and_key():
    axes = parse_grid("C=1;seed=0,1")
    points = expand(SweepSpec(name="t", title="t", axes=axes), ctx())
    assert [p.seed for p in points] == [0, 1]
    assert [p.config.seed for p in points] == [0, 1]
    assert points[0].key().digest != points[1].key().digest
    assert points[0].gcod_task().key().digest != \
        points[1].gcod_task().key().digest
    with pytest.raises(ConfigError, match=r"axis 'seed'"):
        parse_grid("seed=-1")


def test_tech_node_changes_point_key_not_training_key():
    # silicon node is a platform knob: same trained pipeline, new point
    a, b = expand(SweepSpec(name="t", title="t",
                            axes={"tech_node": (7, 28)}), ctx())
    assert a.gcod_task().key().digest == b.gcod_task().key().digest
    assert a.key().digest != b.key().digest
