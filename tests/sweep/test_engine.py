"""Sweep engine: planning, caching, parity, and the acceptance criteria.

The heavyweight fixtures run real (micro-scale) GCoD pipelines; they are
the acceptance harness for the sweep engine: a warm sweep over a >= 24
point grid performs zero training runs (counter-asserted) and emits the
same bytes as a cold serial run, and ``jobs=2`` output is byte-identical
to ``jobs=1``.
"""

from dataclasses import replace

import pytest

from repro.algorithm import run_gcod
from repro.evaluation import EvalContext
from repro.evaluation.context import ExperimentResult
from repro.evaluation.experiments import ablation_cs
from repro.hardware import extract_workload
from repro.runtime import counters
from repro.runtime.keys import KIND_GCOD, KIND_SWEEP
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    pareto_frontier,
    plan_sweep,
    run_sweep,
    sweep_report_text,
)

#: Tiny scales so each GCoD run trains in well under a second.
MICRO_SCALES = {"cora": 0.06, "citeseer": 0.05}

#: The acceptance grid: 2 x 2 x 2 x 3 = 24 points, but only four unique
#: training configs — the platform axes (bits, hw_scale) share pipelines.
ACCEPTANCE_SPEC = SweepSpec(
    name="acceptance",
    title="acceptance grid",
    axes={
        "C": (1, 2),
        "S": (2, 3),
        "bits": (32, 8),
        "hw_scale": (0.5, 1.0, 2.0),
    },
)


def micro_ctx(store=None):
    ctx = EvalContext(profile="fast", store=store)
    ctx.dataset_scales = dict(MICRO_SCALES)
    return ctx


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_dedups_training_across_platform_axes(tmp_path):
    plan = plan_sweep(micro_ctx(ArtifactStore(str(tmp_path))),
                      ACCEPTANCE_SPEC)
    assert len(plan.points) == 24
    assert plan.cached == []
    assert plan.deps_total == 4  # (C, S) combos; bits/hw_scale share runs
    assert len(plan.tasks) == 4


def test_plan_skips_stored_points_and_training(tmp_path):
    store = ArtifactStore(str(tmp_path))
    spec = SweepSpec(name="t", title="t", axes={"C": (1, 2)})
    run_sweep(micro_ctx(store), spec)
    plan = plan_sweep(micro_ctx(store), spec)
    assert plan.cached == [0, 1]
    assert plan.tasks == []


def test_storeless_sweep_still_runs(tmp_path):
    spec = SweepSpec(name="t", title="t", axes={"C": (1,), "S": (2,)})
    report = run_sweep(micro_ctx(store=None), spec, jobs=2)
    assert len(report.results) == 1
    assert report.points_evaluated == 1
    assert report.results[0].speedup_vs_awb > 0


# ----------------------------------------------------------------------
# acceptance: warm sweep = zero runs + identical bytes; jobs parity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cold_sweep(tmp_path_factory):
    """A store warmed by one serial cold sweep, plus that sweep's bytes."""
    root = str(tmp_path_factory.mktemp("sweep-cold"))
    counters.reset_counters()
    report = run_sweep(micro_ctx(ArtifactStore(root)), ACCEPTANCE_SPEC,
                       jobs=1)
    assert counters.gcod_run_count() == 4  # one per unique config
    assert counters.sweep_point_run_count() == 24
    text = sweep_report_text(ACCEPTANCE_SPEC, report.results)
    return root, text


def test_warm_sweep_zero_training_and_identical_bytes(cold_sweep):
    root, cold_text = cold_sweep
    counters.reset_counters()
    report = run_sweep(micro_ctx(ArtifactStore(root)), ACCEPTANCE_SPEC,
                       jobs=1)
    # every point loads from the store: no training, no point evaluation
    assert counters.gcod_run_count() == 0
    assert counters.sweep_point_run_count() == 0
    assert report.points_evaluated == 0
    assert len(report.cache_hits) == 24
    assert sweep_report_text(ACCEPTANCE_SPEC, report.results) == cold_text


def test_parallel_sweep_byte_identical_to_serial(cold_sweep, tmp_path):
    _, cold_text = cold_sweep
    store = ArtifactStore(str(tmp_path / "sweep-jobs4"))
    counters.reset_counters()
    report = run_sweep(micro_ctx(store), ACCEPTANCE_SPEC, jobs=4)
    # pool workers trained AND evaluated in their own processes; the
    # parent ran nothing and collected everything from the store.
    assert counters.gcod_run_count() == 0
    assert counters.sweep_point_run_count() == 0
    assert report.points_evaluated == 24  # aggregated from the workers
    assert sweep_report_text(ACCEPTANCE_SPEC, report.results) == cold_text


def test_sweep_survives_corrupted_point_entry(cold_sweep):
    root, cold_text = cold_sweep
    store = ArtifactStore(root)
    plan = plan_sweep(micro_ctx(store), ACCEPTANCE_SPEC)
    with open(store._data_path(plan.keys[3]), "wb") as fh:
        fh.write(b"garbage")
    counters.reset_counters()
    report = run_sweep(micro_ctx(store), ACCEPTANCE_SPEC)
    # one point recomputed (from the cached pipeline: still no training)
    assert counters.gcod_run_count() == 0
    assert report.points_evaluated == 1
    assert sweep_report_text(ACCEPTANCE_SPEC, report.results) == cold_text


# ----------------------------------------------------------------------
# parity with the legacy hand-rolled ablation loop
# ----------------------------------------------------------------------
def legacy_ablation_cs(context, datasets, class_counts, subgraph_counts):
    """The pre-sweep-engine ablation_cs.run, verbatim (PR-3 state)."""
    plats = context.platforms()
    rows, speedups, bw_reductions = [], [], []
    for dataset in datasets:
        graph = context.graph(dataset)
        wl_base = context.baseline_workload(dataset, "gcn")
        awb = plats["awb-gcn"].run(wl_base)
        hygcn = plats["hygcn"].run(wl_base)
        for c in class_counts:
            for s in subgraph_counts:
                config = replace(
                    context.gcod_config(), num_classes=c,
                    num_subgraphs=max(s, c),
                )
                result = run_gcod(graph, "gcn", config)
                wl = extract_workload(
                    result.final_graph, result.layout, "gcn",
                    paper_scale=True
                )
                gcod = plats["gcod"].run(wl)
                speedup = awb.latency_s / gcod.latency_s
                bw_red = 1.0 - gcod.required_bandwidth_gbps / max(
                    hygcn.required_bandwidth_gbps, 1e-9
                )
                speedups.append(speedup)
                bw_reductions.append(bw_red)
                rows.append(
                    (
                        dataset, c, s, round(speedup, 2),
                        f"{bw_red * 100:.0f}%",
                        round(result.accuracy_final * 100, 1),
                        round(result.layout.balance_within_classes(
                            result.final_graph.adj), 3),
                    )
                )
    summary = (
        f"speedup over AWB-GCN in [{min(speedups):.2f}, "
        f"{max(speedups):.2f}] "
        f"(paper: [1.8, 2.8]); bandwidth reduction in "
        f"[{min(bw_reductions) * 100:.0f}%, "
        f"{max(bw_reductions) * 100:.0f}%] "
        f"(paper: [26%, 53%]). GCoD beats AWB-GCN at every design point."
    )
    return ExperimentResult(
        name="Ablation: C x S sweep (GCN)",
        headers=("dataset", "C", "S", "speedup vs awb",
                 "BW reduction vs hygcn", "accuracy %", "balance"),
        rows=rows,
        extra_text=summary,
    )


GRID = dict(datasets=("cora", "citeseer"), class_counts=(1, 2),
            subgraph_counts=(2, 3))


@pytest.fixture(scope="module")
def legacy_result():
    return legacy_ablation_cs(micro_ctx(), **GRID)


def test_sweep_ablation_matches_legacy_bytes(legacy_result, tmp_path):
    new = ablation_cs.run(micro_ctx(ArtifactStore(str(tmp_path))), **GRID)
    assert new.render() == legacy_result.render()
    assert new.to_json() == legacy_result.to_json()
    assert new.to_csv() == legacy_result.to_csv()


def test_sweep_ablation_jobs2_matches_legacy_bytes(legacy_result, tmp_path):
    new = ablation_cs.run(micro_ctx(ArtifactStore(str(tmp_path))),
                          jobs=2, **GRID)
    assert new.render() == legacy_result.render()
    assert new.to_json() == legacy_result.to_json()


def test_warm_ablation_rerun_trains_nothing(tmp_path):
    store = ArtifactStore(str(tmp_path))
    cold = ablation_cs.run(micro_ctx(store), **GRID)
    counters.reset_counters()
    warm = ablation_cs.run(micro_ctx(store), **GRID)
    assert counters.gcod_run_count() == 0
    assert warm.render() == cold.render()


# ----------------------------------------------------------------------
# failure paths: a dying point leaves no partial state behind
# ----------------------------------------------------------------------
def test_failed_point_leaves_no_store_entry(tmp_path, monkeypatch):
    store = ArtifactStore(str(tmp_path))
    spec = SweepSpec(name="t", title="t", axes={"C": (1, 2)})
    ctx = micro_ctx(store)

    import repro.algorithm

    real_run_gcod = repro.algorithm.run_gcod

    def exploding(graph, arch, config):
        if config.num_classes == 2:
            raise RuntimeError("boom at C=2")
        return real_run_gcod(graph, arch, config)

    monkeypatch.setattr(repro.algorithm, "run_gcod", exploding)
    # engine.py binds `from repro.algorithm import run_gcod` per call, so
    # the patch takes effect; the C=2 point dies mid-sweep.
    with pytest.raises(RuntimeError, match="boom at C=2"):
        run_sweep(ctx, spec)
    monkeypatch.undo()

    # the surviving C=1 artifacts are in the store, the failed point is not
    plan = plan_sweep(micro_ctx(store), spec)
    assert plan.cached == [0]
    assert len(plan.tasks) == 1
    kinds = {e.kind for e in store.entries()}
    assert KIND_SWEEP in kinds and KIND_GCOD in kinds
    assert sum(1 for e in store.entries(KIND_SWEEP)) == 1
    assert sum(1 for e in store.entries(KIND_GCOD)) == 1

    # a rerun completes from the surviving cache: only C=2 trains
    counters.reset_counters()
    report = run_sweep(micro_ctx(store), spec)
    assert counters.gcod_run_count() == 1
    assert len(report.results) == 2
    assert report.cache_hits == [0]


# ----------------------------------------------------------------------
# the Pareto frontier
# ----------------------------------------------------------------------
def test_pareto_frontier_drops_dominated_points(cold_sweep):
    root, _ = cold_sweep
    report = run_sweep(micro_ctx(ArtifactStore(root)), ACCEPTANCE_SPEC)
    frontier = pareto_frontier(report.results)
    assert 0 < len(frontier) <= len(report.results)
    # no frontier point dominates another frontier point
    for r in frontier:
        for q in frontier:
            assert not (
                q.speedup_vs_awb >= r.speedup_vs_awb
                and q.accuracy >= r.accuracy
                and (q.speedup_vs_awb > r.speedup_vs_awb
                     or q.accuracy > r.accuracy)
            )
    # every non-frontier point is dominated by some frontier point
    frontier_ids = {id(r) for r in frontier}
    for r in report.results:
        if id(r) in frontier_ids:
            continue
        assert any(
            q.speedup_vs_awb >= r.speedup_vs_awb
            and q.accuracy >= r.accuracy
            and (q.speedup_vs_awb > r.speedup_vs_awb
                 or q.accuracy > r.accuracy)
            for q in frontier
        )
    # deterministic walk: descending speedup
    speeds = [r.speedup_vs_awb for r in frontier]
    assert speeds == sorted(speeds, reverse=True)
