"""Serialization round-trips for graphs, layouts, and weights."""

import numpy as np
import pytest

from repro.io import (
    load_graph,
    load_layout,
    load_model_weights,
    save_graph,
    save_layout,
    save_model_weights,
)
from repro.nn.models import build_model


def test_graph_roundtrip(tmp_path, tiny_graph):
    path = tmp_path / "graph.npz"
    save_graph(tiny_graph, path)
    loaded = load_graph(path)
    assert (loaded.adj != tiny_graph.adj).nnz == 0
    np.testing.assert_array_equal(loaded.features, tiny_graph.features)
    np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
    np.testing.assert_array_equal(loaded.train_mask, tiny_graph.train_mask)
    assert loaded.name == tiny_graph.name


def test_graph_meta_scalars_survive(tmp_path, tiny_graph):
    tiny_graph.meta["generated_nnz"] = 123
    tiny_graph.meta["scale"] = 0.5
    tiny_graph.meta["unpicklable"] = object()  # silently dropped
    path = tmp_path / "g.npz"
    save_graph(tiny_graph, path)
    loaded = load_graph(path)
    assert loaded.meta["generated_nnz"] == 123
    assert loaded.meta["scale"] == 0.5
    assert "unpicklable" not in loaded.meta


def test_layout_roundtrip(tmp_path, partitioned):
    graph, layout = partitioned
    path = tmp_path / "layout.npz"
    save_layout(layout, path)
    loaded = load_layout(path)
    np.testing.assert_array_equal(loaded.perm, layout.perm)
    np.testing.assert_array_equal(loaded.node_class, layout.node_class)
    assert loaded.num_classes == layout.num_classes
    assert len(loaded.spans) == len(layout.spans)
    assert loaded.spans[0] == layout.spans[0]
    # The loaded layout is functional, not just structural:
    assert loaded.dense_fraction(graph.adj) == pytest.approx(
        layout.dense_fraction(graph.adj)
    )


def test_model_weights_roundtrip(tmp_path, tiny_graph):
    model = build_model("gcn", tiny_graph, rng=0)
    path = tmp_path / "weights.npz"
    save_model_weights(model.state_dict(), path)
    loaded = load_model_weights(path)
    fresh = build_model("gcn", tiny_graph, rng=99)
    fresh.load_state_dict(loaded)
    for (n1, p1), (n2, p2) in zip(
        model.named_parameters(), fresh.named_parameters()
    ):
        assert n1 == n2
        np.testing.assert_array_equal(p1.data, p2.data)
