"""Compiler pipeline: parser, allocator, templates, end-to-end compile."""

import numpy as np
import pytest

from repro.compiler import (
    allocate,
    compile_accelerator,
    emit_templates,
    parse_network,
)
from repro.errors import CompileError


def test_parse_gcn(tiny_graph):
    net = parse_network(tiny_graph, "gcn", hidden=16)
    assert net.num_layers == 2
    assert net.feature_dim == tiny_graph.num_features
    assert net.output_dim == tiny_graph.num_classes
    assert net.layers[0].f_out == 16
    assert all(l.kind == "gcn-conv" for l in net.layers)


def test_parse_resgcn_marks_linear_layers(tiny_graph):
    net = parse_network(tiny_graph, "resgcn")
    kinds = [l.kind for l in net.layers]
    assert kinds[0] == "linear" and kinds[-1] == "linear"
    assert kinds[1] == "gcn-conv"


def test_allocate_proportional_pes():
    alloc = allocate(
        dense_macs_per_class=[3000.0, 1000.0],
        sparse_macs=1000.0,
        dense_bytes_per_class=[300.0, 100.0],
        sparse_bytes=100.0,
        total_pes=1000,
    )
    pes = [c.pes for c in alloc.chunks] + [alloc.sparser.pes]
    assert sum(pes) <= 1000
    assert pes[0] > pes[1]  # 3x the workload -> more PEs
    assert pes[0] == pytest.approx(600, abs=30)


def test_allocate_minimum_one_pe_each():
    alloc = allocate([1e9, 1.0], 1.0, [1e9, 1.0], 1.0, total_pes=64)
    assert all(c.pes >= 1 for c in alloc.all_allocations())


def test_allocate_validates_budget():
    alloc = allocate([10.0], 5.0, [10.0], 5.0, total_pes=100)
    alloc.validate()  # must not raise


def test_allocate_rejects_empty_classes():
    with pytest.raises(CompileError):
        allocate([], 1.0, [], 1.0)


def test_allocate_rejects_tiny_budget():
    with pytest.raises(CompileError):
        allocate([1.0, 1.0, 1.0], 1.0, [1.0, 1.0, 1.0], 1.0, total_pes=2)


def test_bandwidth_allocation_sums_to_budget():
    alloc = allocate([2.0, 2.0], 1.0, [600.0, 300.0], 100.0,
                     total_bandwidth_gbps=460.0)
    total = sum(c.bandwidth_gbps for c in alloc.all_allocations())
    assert total == pytest.approx(460.0)


def test_templates_render(tiny_graph):
    net = parse_network(tiny_graph, "gcn")
    alloc = allocate([10.0], 5.0, [10.0], 5.0, total_pes=128)
    text = emit_templates(net, alloc)
    assert "`define NUM_CHUNKS" in text
    assert "CHUNK0_PES" in text
    assert "CHUNK_SPARSE_PES" in text
    assert "LAYER0_DIMS" in text


def test_compile_end_to_end(gcod_result):
    compiled = compile_accelerator(
        gcod_result.final_graph, "gcn", layout=gcod_result.layout
    )
    assert len(compiled.allocation.chunks) == gcod_result.layout.num_classes
    report = compiled.run()
    assert report.latency_s > 0
    assert "NUM_CHUNKS" in compiled.template


def test_compile_unpartitioned_graph(tiny_graph):
    compiled = compile_accelerator(tiny_graph, "gcn")
    assert len(compiled.allocation.chunks) == 1  # single-chunk fallback
    assert compiled.run().latency_s > 0


def test_compile_8bit_variant(gcod_result):
    compiled = compile_accelerator(
        gcod_result.final_graph, "gcn", layout=gcod_result.layout, bits=8
    )
    assert compiled.accelerator.bits == 8
    assert "PRECISION_BITS    8" in compiled.template
