"""Unit tests for the CSR and CSC containers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix


@pytest.fixture()
def coo():
    return COOMatrix(
        (4, 4),
        [0, 0, 1, 2, 3, 3],
        [1, 3, 2, 0, 1, 2],
        [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
    )


def test_csr_roundtrip_preserves_dense(coo):
    csr = CSRMatrix.from_coo(coo)
    assert np.array_equal(csr.to_dense(), coo.to_dense())


def test_csc_roundtrip_preserves_dense(coo):
    csc = CSCMatrix.from_coo(coo)
    assert np.array_equal(csc.to_dense(), coo.to_dense())


def test_csr_row_degrees(coo):
    csr = CSRMatrix.from_coo(coo)
    assert np.array_equal(csr.row_degrees(), [2, 1, 1, 2])


def test_csc_col_degrees(coo):
    csc = CSCMatrix.from_coo(coo)
    assert np.array_equal(csc.col_degrees(), [1, 2, 2, 1])


def test_csr_row_slice(coo):
    csr = CSRMatrix.from_coo(coo)
    cols, vals = csr.row_slice(0)
    assert set(cols.tolist()) == {1, 3}
    assert vals.sum() == 3.0


def test_csc_col_slice(coo):
    csc = CSCMatrix.from_coo(coo)
    rows, vals = csc.col_slice(1)
    assert set(rows.tolist()) == {0, 3}


def test_csc_smaller_than_coo_for_tall_matrices():
    # The sparser branch's argument: CSC stores one fewer index per nnz,
    # so for nnz >> ncols it beats COO (Sec. V-B).
    rng = np.random.default_rng(0)
    n, nnz = 50, 600
    coo = COOMatrix(
        (n, n),
        rng.integers(0, n, nnz),
        rng.integers(0, n, nnz),
        np.ones(nnz),
    )
    csc = CSCMatrix.from_coo(coo)
    assert csc.storage_bytes() < coo.storage_bytes()


def test_csc_nonempty_columns(coo):
    csc = CSCMatrix.from_coo(coo)
    assert np.array_equal(csc.nonempty_columns(), [0, 1, 2, 3])
    empty = CSCMatrix.from_coo(COOMatrix((3, 3), [0], [1]))
    assert np.array_equal(empty.nonempty_columns(), [1])


def test_csr_bad_indptr_raises():
    with pytest.raises(ShapeError):
        CSRMatrix((2, 2), [0, 1], [0], [1.0])  # indptr too short


def test_csr_decreasing_indptr_raises():
    with pytest.raises(ShapeError):
        CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 1.0])


def test_csc_wrong_nnz_raises():
    with pytest.raises(ShapeError):
        CSCMatrix((2, 2), [0, 1, 3], [0, 1], [1.0, 1.0])


def test_csr_to_coo_roundtrip(coo):
    back = CSRMatrix.from_coo(coo).to_coo()
    assert np.array_equal(back.to_dense(), coo.to_dense())


def test_csc_to_coo_roundtrip(coo):
    back = CSCMatrix.from_coo(coo).to_coo()
    assert np.array_equal(back.to_dense(), coo.to_dense())
