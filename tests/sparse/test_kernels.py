"""Kernel backend registry + vectorized/tiled/reference parity.

The ``vectorized`` and ``tiled`` backends are only allowed to exist because
they are numerically indistinguishable from the loop-exact ``reference``
kernels: every kernel family is held to 1e-12 here, across both product
orders, duplicate indices, empty rows/columns, rectangular shapes, and
empty operands.
"""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    spmm,
    spmm_batch,
)
from repro.sparse import kernels as K

REF = K.get_backend("reference")
VEC = K.get_backend("vectorized")
TIL = K.get_backend("tiled")

#: The backends that must be numerically indistinguishable from REF.
FAST = [VEC, TIL]

#: (rows, cols, nnz, force_duplicates) covering the awkward geometries
SHAPES = [
    (1, 1, 0, False),
    (5, 3, 0, False),      # empty matrix, rectangular
    (7, 7, 20, False),
    (12, 9, 40, False),    # rectangular, more rows
    (3, 17, 25, False),    # rectangular, more cols
    (40, 2, 60, True),     # heavy duplicate stacking on few columns
    (16, 16, 48, True),    # duplicate (i, j) pairs must accumulate
    (30, 30, 1, False),    # single entry, mostly-empty rows/cols
]


def _random_coo(rng, n, m, nnz, duplicates):
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, m, nnz)
    if duplicates and nnz >= 4:
        # Stack several entries on one coordinate to exercise accumulation.
        rows[: nnz // 3] = rows[0]
        cols[: nnz // 3] = cols[0]
    return COOMatrix((n, m), rows, cols, rng.normal(size=nnz))


def _close(a, b):
    np.testing.assert_allclose(a, b, atol=1e-12, rtol=1e-12)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_lists_all_backends():
    names = K.available_backends()
    assert {"reference", "vectorized", "tiled"} <= set(names)


def test_default_backend_is_vectorized():
    assert K.get_backend(None).name == "vectorized"
    assert K.default_backend().name == "vectorized"


def test_get_backend_accepts_instances():
    assert K.get_backend(REF) is REF


def test_unknown_backend_has_clear_error():
    with pytest.raises(KernelError, match="unknown kernel backend 'gpu'"):
        K.get_backend("gpu")
    with pytest.raises(KernelError, match="vectorized"):
        # The error must list what *is* available.
        K.get_backend("gpu")


def test_set_default_backend_roundtrip():
    previous = K.set_default_backend("reference")
    try:
        assert previous == "vectorized"
        assert K.get_backend(None).name == "reference"
    finally:
        K.set_default_backend(previous)
    assert K.get_backend(None).name == "vectorized"


def test_register_backend_rejects_unnamed():
    with pytest.raises(KernelError):
        K.register_backend(K.KernelBackend())


# ----------------------------------------------------------------------
# product-order SpMM parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fast", FAST, ids=lambda b: b.name)
@pytest.mark.parametrize("n,m,nnz,dup", SHAPES)
def test_row_product_parity(rng, n, m, nnz, dup, fast):
    coo = _random_coo(rng, n, m, nnz, dup)
    csr = CSRMatrix.from_coo(coo)
    b = rng.normal(size=(m, 5))
    _close(fast.spmm_row_product(csr, b), REF.spmm_row_product(csr, b))
    _close(fast.spmm_row_product(csr, b), coo.to_dense() @ b)


@pytest.mark.parametrize("fast", FAST, ids=lambda b: b.name)
@pytest.mark.parametrize("n,m,nnz,dup", SHAPES)
def test_column_product_parity(rng, n, m, nnz, dup, fast):
    coo = _random_coo(rng, n, m, nnz, dup)
    csc = CSCMatrix.from_coo(coo)
    b = rng.normal(size=(m, 4))
    _close(fast.spmm_column_product(csc, b), REF.spmm_column_product(csc, b))
    _close(fast.spmm_column_product(csc, b), coo.to_dense() @ b)


@pytest.mark.parametrize("n,m,nnz,dup", SHAPES)
def test_tiled_multi_tile_parity(rng, n, m, nnz, dup):
    # A tile size smaller than the operands forces multi-tile execution.
    backend = K.TiledBackend(tile_size=3)
    coo = _random_coo(rng, n, m, nnz, dup)
    b = rng.normal(size=(m, 5))
    csr, csc = CSRMatrix.from_coo(coo), CSCMatrix.from_coo(coo)
    _close(backend.spmm_row_product(csr, b), REF.spmm_row_product(csr, b))
    _close(
        backend.spmm_column_product(csc, b), REF.spmm_column_product(csc, b)
    )


def test_single_column_dense_operand(rng):
    coo = _random_coo(rng, 9, 6, 15, False)
    b = rng.normal(size=(6, 1))
    _close(
        VEC.spmm_row_product(CSRMatrix.from_coo(coo), b),
        REF.spmm_row_product(CSRMatrix.from_coo(coo), b),
    )


@pytest.mark.parametrize("backend", ["reference", "vectorized", "tiled"])
def test_spmm_dispatch_honors_backend_argument(rng, backend):
    coo = _random_coo(rng, 10, 8, 30, False)
    b = rng.normal(size=(8, 3))
    got_row = spmm(CSRMatrix.from_coo(coo), b, backend=backend)
    got_col = spmm(CSCMatrix.from_coo(coo), b, backend=backend)
    _close(got_row, coo.to_dense() @ b)
    _close(got_col, coo.to_dense() @ b)


def test_spmm_rejects_unknown_backend(rng):
    coo = _random_coo(rng, 4, 4, 6, False)
    with pytest.raises(KernelError):
        spmm(CSRMatrix.from_coo(coo), rng.normal(size=(4, 2)), backend="nope")


@pytest.mark.parametrize("backend", ["reference", "vectorized", "tiled"])
def test_vectorized_shape_errors_match_reference(rng, backend):
    coo = _random_coo(rng, 6, 5, 10, False)
    csr = CSRMatrix.from_coo(coo)
    with pytest.raises(ShapeError):
        spmm(csr, rng.normal(size=(7, 2)), backend=backend)
    with pytest.raises(ShapeError):
        spmm(csr, rng.normal(size=5), backend=backend)


# ----------------------------------------------------------------------
# spmm_batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fmt", ["csr", "csc"])
def test_spmm_batch_matches_per_pair(rng, fmt):
    cls = CSRMatrix if fmt == "csr" else CSCMatrix
    mats, denses = [], []
    for n, m, nnz, dup in SHAPES:
        coo = _random_coo(rng, n, m, nnz, dup)
        mats.append(cls.from_coo(coo))
        denses.append(rng.normal(size=(m, 6)))
    batched = spmm_batch(mats, denses)
    for a, b, got in zip(mats, denses, batched):
        _close(got, spmm(a, b, backend="reference"))


def test_spmm_batch_mixed_formats_falls_back(rng):
    coo1 = _random_coo(rng, 6, 4, 12, False)
    coo2 = _random_coo(rng, 3, 5, 8, False)
    mats = [CSRMatrix.from_coo(coo1), CSCMatrix.from_coo(coo2)]
    denses = [rng.normal(size=(4, 3)), rng.normal(size=(5, 3))]
    batched = spmm_batch(mats, denses)
    _close(batched[0], coo1.to_dense() @ denses[0])
    _close(batched[1], coo2.to_dense() @ denses[1])


def test_spmm_batch_mixed_widths_falls_back(rng):
    coo1 = _random_coo(rng, 6, 4, 12, False)
    coo2 = _random_coo(rng, 3, 5, 8, False)
    mats = [CSRMatrix.from_coo(coo1), CSRMatrix.from_coo(coo2)]
    denses = [rng.normal(size=(4, 3)), rng.normal(size=(5, 7))]
    batched = spmm_batch(mats, denses)
    _close(batched[0], coo1.to_dense() @ denses[0])
    _close(batched[1], coo2.to_dense() @ denses[1])


def test_spmm_batch_empty_and_length_mismatch(rng):
    assert spmm_batch([], []) == []
    coo = _random_coo(rng, 4, 4, 6, False)
    with pytest.raises(ShapeError):
        spmm_batch([CSRMatrix.from_coo(coo)], [])


# ----------------------------------------------------------------------
# segment primitives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sorted_segments", [True, False])
@pytest.mark.parametrize("width", [None, 1, 7])
def test_segment_sum_parity(rng, sorted_segments, width):
    num_segments, count = 11, 60
    segments = rng.integers(0, num_segments, count)
    if sorted_segments:
        segments = np.sort(segments)
    shape = (count,) if width is None else (count, width)
    values = rng.normal(size=shape)
    _close(
        VEC.segment_sum(values, segments, num_segments),
        REF.segment_sum(values, segments, num_segments),
    )


@pytest.mark.parametrize("sorted_segments", [True, False])
def test_segment_max_parity(rng, sorted_segments):
    num_segments, count = 9, 50
    segments = rng.integers(0, num_segments, count)
    if sorted_segments:
        segments = np.sort(segments)
    values = rng.normal(size=(count, 6))
    ref = REF.segment_max(values, segments, num_segments)
    vec = VEC.segment_max(values, segments, num_segments)
    # Empty segments stay -inf in both; compare finiteness then values.
    assert np.array_equal(np.isfinite(ref), np.isfinite(vec))
    _close(ref[np.isfinite(ref)], vec[np.isfinite(vec)])


def test_segment_primitives_empty_input(rng):
    for backend in (REF, VEC):
        summed = backend.segment_sum(np.zeros((0, 3)), np.zeros(0, int), 4)
        assert summed.shape == (4, 3) and not summed.any()
        maxed = backend.segment_max(np.zeros((0, 3)), np.zeros(0, int), 4)
        assert maxed.shape == (4, 3) and np.all(np.isneginf(maxed))
        agg = backend.coo_spmm(
            np.zeros(0), np.zeros(0, int), np.zeros(0, int),
            rng.normal(size=(5, 3)), 4,
        )
        assert agg.shape == (4, 3) and not agg.any()


def test_segment_sum_rejects_out_of_range_ids(rng):
    # np.add.at would raise here; the bincount path must not silently drop.
    values = rng.normal(size=6)
    segments = np.array([0, 1, 2, 3, 4, 7])
    with pytest.raises(IndexError):
        VEC.segment_sum(values, segments, 5)
    with pytest.raises(IndexError):
        REF.segment_sum(values, segments, 5)


def test_spmm_batch_handles_non_compressed_scipy_inputs(rng):
    import scipy.sparse as sp

    coo1 = _random_coo(rng, 5, 4, 9, False)
    coo2 = _random_coo(rng, 6, 4, 7, False)
    mats = [
        sp.coo_matrix((coo1.data, (coo1.row, coo1.col)), shape=coo1.shape),
        sp.coo_matrix((coo2.data, (coo2.row, coo2.col)), shape=coo2.shape),
    ]
    denses = [rng.normal(size=(4, 3)), rng.normal(size=(4, 3))]
    batched = VEC.spmm_batch(mats, denses)
    _close(batched[0], coo1.to_dense() @ denses[0])
    _close(batched[1], coo2.to_dense() @ denses[1])


@pytest.mark.parametrize("duplicate_edges", [False, True])
def test_coo_spmm_parity(rng, duplicate_edges):
    num_rows, num_cols, num_edges = 8, 10, 40
    rows = rng.integers(0, num_rows, num_edges)
    cols = rng.integers(0, num_cols, num_edges)
    if duplicate_edges:
        rows[:10] = rows[0]
        cols[:10] = cols[0]
    w = rng.normal(size=num_edges)
    x = rng.normal(size=(num_cols, 5))
    _close(
        VEC.coo_spmm(w, rows, cols, x, num_rows),
        REF.coo_spmm(w, rows, cols, x, num_rows),
    )
