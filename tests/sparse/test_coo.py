"""Unit tests for the COO container."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import COOMatrix


def _sample():
    return COOMatrix((3, 4), [0, 1, 2, 2], [1, 0, 3, 0], [1.0, 2.0, 3.0, 4.0])


def test_nnz_counts_stored_entries():
    assert _sample().nnz == 4


def test_default_data_is_ones():
    mat = COOMatrix((2, 2), [0, 1], [1, 0])
    assert np.array_equal(mat.data, [1.0, 1.0])


def test_to_dense_places_values():
    dense = _sample().to_dense()
    assert dense[0, 1] == 1.0
    assert dense[2, 0] == 4.0
    assert dense.sum() == 10.0


def test_to_dense_sums_duplicates():
    mat = COOMatrix((2, 2), [0, 0], [0, 0], [1.5, 2.5])
    assert mat.to_dense()[0, 0] == 4.0


def test_transpose_swaps_axes():
    t = _sample().transpose()
    assert t.shape == (4, 3)
    assert np.array_equal(t.to_dense(), _sample().to_dense().T)


def test_sorted_by_row_orders_entries():
    mat = COOMatrix((3, 3), [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
    srt = mat.sorted_by_row()
    assert np.array_equal(srt.row, [0, 1, 2])
    assert np.array_equal(srt.to_dense(), mat.to_dense())


def test_storage_bytes_counts_two_indices_and_value():
    assert _sample().storage_bytes() == 4 * (4 + 4 + 4)


def test_storage_bytes_with_int8_values():
    assert _sample().storage_bytes(value_bytes=1) == 4 * (4 + 4 + 1)


def test_length_mismatch_raises():
    with pytest.raises(ShapeError):
        COOMatrix((2, 2), [0, 1], [0], [1.0, 2.0])


def test_out_of_bounds_indices_raise():
    with pytest.raises(ShapeError):
        COOMatrix((2, 2), [0, 2], [0, 1])


def test_non_2d_shape_raises():
    with pytest.raises(ShapeError):
        COOMatrix((2, 2, 2), [0], [0])


def test_empty_matrix_is_valid():
    mat = COOMatrix((5, 5), [], [])
    assert mat.nnz == 0
    assert mat.to_dense().sum() == 0.0
