"""Property-based tests (hypothesis) for the sparse containers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix


@st.composite
def coo_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=1, max_value=20))
    nnz = draw(st.integers(min_value=0, max_value=60))
    rows = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)
    )
    data = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix((n, m), np.array(rows, dtype=np.int64),
                     np.array(cols, dtype=np.int64), np.array(data))


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_roundtrip_dense_equal(coo):
    assert np.allclose(CSRMatrix.from_coo(coo).to_dense(), coo.to_dense())


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csc_roundtrip_dense_equal(coo):
    assert np.allclose(CSCMatrix.from_coo(coo).to_dense(), coo.to_dense())


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_nnz_preserved_by_conversions(coo):
    assert CSRMatrix.from_coo(coo).nnz == coo.nnz
    assert CSCMatrix.from_coo(coo).nnz == coo.nnz


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(coo):
    twice = coo.transpose().transpose()
    assert np.allclose(twice.to_dense(), coo.to_dense())


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_row_degrees_sum_to_nnz(coo):
    csr = CSRMatrix.from_coo(coo)
    assert int(csr.row_degrees().sum()) == coo.nnz


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_storage_csc_never_larger_than_coo_plus_pointer(coo):
    # CSC trades one index per nnz for a column-pointer array.
    csc = CSCMatrix.from_coo(coo)
    assert csc.storage_bytes() <= coo.storage_bytes() + 4 * (coo.shape[1] + 1)
