"""SpMM kernels: both product orders must equal dense matmul exactly."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    from_scipy,
    spmm,
    spmm_column_product,
    spmm_row_product,
    to_scipy,
)


def _random_coo(rng, n=12, m=9, nnz=40):
    return COOMatrix(
        (n, m),
        rng.integers(0, n, nnz),
        rng.integers(0, m, nnz),
        rng.normal(size=nnz),
    )


def test_row_product_matches_dense(rng):
    coo = _random_coo(rng)
    b = rng.normal(size=(9, 5))
    expected = coo.to_dense() @ b
    got = spmm_row_product(CSRMatrix.from_coo(coo), b)
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_column_product_matches_dense(rng):
    coo = _random_coo(rng)
    b = rng.normal(size=(9, 5))
    expected = coo.to_dense() @ b
    got = spmm_column_product(CSCMatrix.from_coo(coo), b)
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_both_orders_agree(rng):
    # Fig. 7's point: same product, different partial-result order.
    coo = _random_coo(rng, n=20, m=20, nnz=80)
    b = rng.normal(size=(20, 3))
    row = spmm_row_product(CSRMatrix.from_coo(coo), b)
    col = spmm_column_product(CSCMatrix.from_coo(coo), b)
    np.testing.assert_allclose(row, col, atol=1e-12)


def test_spmm_dispatch(rng):
    coo = _random_coo(rng)
    b = rng.normal(size=(9, 2))
    np.testing.assert_allclose(
        spmm(CSRMatrix.from_coo(coo), b), spmm(CSCMatrix.from_coo(coo), b),
        atol=1e-12,
    )


def test_spmm_rejects_unknown_type():
    with pytest.raises(TypeError):
        spmm(np.eye(3), np.eye(3))


def test_spmm_shape_mismatch(rng):
    coo = _random_coo(rng)
    with pytest.raises(ShapeError):
        spmm_row_product(CSRMatrix.from_coo(coo), rng.normal(size=(7, 2)))


def test_spmm_rejects_1d_operand(rng):
    coo = _random_coo(rng)
    with pytest.raises(ShapeError):
        spmm_row_product(CSRMatrix.from_coo(coo), rng.normal(size=9))


def test_scipy_roundtrip(rng):
    coo = _random_coo(rng)
    back = from_scipy(to_scipy(coo), "coo")
    np.testing.assert_allclose(back.to_dense(), coo.to_dense())


def test_from_scipy_formats(rng):
    sp_mat = to_scipy(_random_coo(rng))
    assert isinstance(from_scipy(sp_mat, "csr"), CSRMatrix)
    assert isinstance(from_scipy(sp_mat, "csc"), CSCMatrix)
    with pytest.raises(ValueError):
        from_scipy(sp_mat, "ellpack")
