"""The ``compiled`` kernel tier: lazy probe, fallback alias, key parity.

Two regimes, both exercised regardless of whether this machine has
numba:

* **forced fallback** — the probe is stubbed out via the registry's
  ``_rearm_lazy_backend`` test seam, so ``compiled`` resolves to
  ``vectorized`` with a one-line stderr note: requests stay valid, cache
  keys normalize to the fallback's series, and a store warmed by
  ``vectorized`` serves a ``compiled``-spelled context without a single
  training run.
* **real numba** (skipped when absent) — the JIT kernels must be
  numerically indistinguishable from ``vectorized`` across both product
  orders, duplicate indices, empty rows, and rectangular shapes.
"""

import numpy as np
import pytest

import scipy.sparse as sp

from repro.cli import build_parser
from repro.runtime import counters, keys as runtime_keys
from repro.runtime.store import ArtifactStore
from repro.sparse import from_scipy, spmm
from repro.sparse import kernels as K
from repro.sparse.kernels.compiled import (
    load_compiled_backend,
    numba_available,
)


def _both_formats(dense):
    """The dense matrix as our CSR and CSC containers."""
    return (from_scipy(sp.csr_matrix(dense), "csr"),
            from_scipy(sp.csc_matrix(dense), "csc"))


@pytest.fixture
def forced_fallback():
    """Make the ``compiled`` probe fail, then restore the real loader."""
    K._rearm_lazy_backend(
        "compiled", lambda: "forced unavailable (test)", "vectorized"
    )
    try:
        yield
    finally:
        K._rearm_lazy_backend(
            "compiled", load_compiled_backend, "vectorized"
        )


def test_backend_choices_always_include_compiled():
    assert "compiled" in K.backend_choices()
    for name in K.available_backends():
        assert name in K.backend_choices()


def test_cli_accepts_compiled_backend():
    args = build_parser().parse_args(
        ["--kernel-backend", "compiled", "train", "cora"]
    )
    assert args.kernel_backend == "compiled"


def test_forced_fallback_resolves_to_vectorized(forced_fallback, capsys):
    backend = K.get_backend("compiled")
    assert backend is K.get_backend("vectorized")
    assert backend.name == "vectorized"
    # the note prints once per process, not once per resolution
    K.get_backend("compiled")
    K.get_backend("compiled")
    err = capsys.readouterr().err
    assert err.count("falling back to 'vectorized'") == 1
    assert "forced unavailable (test)" in err


def test_forced_fallback_spmm_matches_vectorized(forced_fallback):
    rng = np.random.default_rng(3)
    dense = (rng.random((30, 40)) < 0.2) * rng.normal(size=(30, 40))
    b = rng.normal(size=(40, 8))
    for mat in _both_formats(dense):
        out = spmm(mat, b, backend="compiled")
        np.testing.assert_array_equal(
            out, spmm(mat, b, backend="vectorized")
        )


def test_forced_fallback_normalizes_cache_keys(forced_fallback):
    compiled = runtime_keys.gcod_key(
        "cora", 0.1, "gcn", None, "compiled", 0, "fast"
    )
    vectorized = runtime_keys.gcod_key(
        "cora", 0.1, "gcn", None, "vectorized", 0, "fast"
    )
    assert compiled.digest == vectorized.digest


def test_unknown_backend_error_lists_choices(forced_fallback):
    with pytest.raises(K.KernelError, match="compiled"):
        K.get_backend("no-such-backend")


def test_vectorized_store_serves_compiled_context_warm(
    forced_fallback, tmp_path
):
    """A store warmed by ``vectorized`` answers a ``compiled``-spelled
    context with zero training runs and byte-identical sweep output."""
    from repro.evaluation import EvalContext
    from repro.sweep import SweepSpec, run_sweep, sweep_report_text

    spec = SweepSpec(name="alias", title="alias grid",
                     axes={"C": (1, 2), "S": (2,)})
    scales = {"cora": 0.06}

    cold_ctx = EvalContext(profile="fast",
                           store=ArtifactStore(str(tmp_path)))
    cold_ctx.dataset_scales = dict(scales)
    cold_text = sweep_report_text(spec, run_sweep(cold_ctx, spec).results)

    counters.reset_counters()
    warm_ctx = EvalContext(profile="fast", kernel_backend="compiled",
                           store=ArtifactStore(str(tmp_path)))
    warm_ctx.dataset_scales = dict(scales)
    warm_report = run_sweep(warm_ctx, spec)
    assert counters.gcod_run_count() == 0
    assert warm_report.points_evaluated == 0
    assert sweep_report_text(spec, warm_report.results) == cold_text


# ----------------------------------------------------------------------
# real-numba parity (exercised on machines/CI legs that have the JIT)
# ----------------------------------------------------------------------
needs_numba = pytest.mark.skipif(not numba_available(),
                                 reason="numba unavailable")


@needs_numba
def test_compiled_registers_as_real_backend():
    backend = K.get_backend("compiled")
    assert backend.name == "compiled"
    assert "compiled" in K.available_backends()


@needs_numba
@pytest.mark.parametrize("rows,cols,width", [(1, 1, 1), (17, 23, 5),
                                             (64, 64, 16), (200, 50, 3)])
def test_compiled_matches_vectorized(rows, cols, width):
    rng = np.random.default_rng(rows * 31 + cols)
    dense = (rng.random((rows, cols)) < 0.15) * rng.normal(
        size=(rows, cols))
    b = rng.normal(size=(cols, width))
    for mat in _both_formats(dense):
        out = spmm(mat, b, backend="compiled")
        ref = spmm(mat, b, backend="vectorized")
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)


@needs_numba
def test_compiled_integer_accounting_is_exact():
    """Integer-valued data must come out exact, not approximately."""
    rng = np.random.default_rng(9)
    dense = rng.integers(0, 4, size=(40, 40)).astype(float)
    b = rng.integers(-3, 4, size=(40, 6)).astype(float)
    for mat in _both_formats(dense):
        np.testing.assert_array_equal(
            spmm(mat, b, backend="compiled"),
            spmm(mat, b, backend="vectorized"),
        )


@needs_numba
def test_compiled_gets_its_own_cache_series():
    """With a real JIT, ``compiled`` results are a distinct key series —
    consistent with how ``tiled``/``reference`` are keyed."""
    compiled = runtime_keys.gcod_key(
        "cora", 0.1, "gcn", None, "compiled", 0, "fast"
    )
    vectorized = runtime_keys.gcod_key(
        "cora", 0.1, "gcn", None, "vectorized", 0, "fast"
    )
    assert compiled.digest != vectorized.digest
