"""Layout-driven tiled execution: numerics, profiles, and accounting."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.graphs.normalize import symmetric_normalize
from repro.sparse import from_scipy
from repro.sparse.kernels import (
    TiledBackend,
    get_backend,
    layout_tile_profile,
    tiled_spmm,
)

WIDTH = 6


@pytest.fixture(scope="module")
def layout_case(request):
    graph, layout = request.getfixturevalue("partitioned")
    a_hat = symmetric_normalize(graph.adj)
    rng = np.random.default_rng(42)
    b = rng.normal(size=(graph.num_nodes, WIDTH))
    return a_hat, layout, b


def test_tiled_spmm_matches_reference(layout_case):
    a_hat, layout, b = layout_case
    out, _ = tiled_spmm(a_hat, b, layout)
    ref = get_backend("reference").spmm_row_product(from_scipy(a_hat, "csr"), b)
    np.testing.assert_allclose(out, ref, atol=1e-12, rtol=1e-12)


def test_profile_covers_every_nnz(layout_case):
    a_hat, layout, b = layout_case
    _, profile = tiled_spmm(a_hat, b, layout)
    dense, sparse = layout.split(a_hat)
    assert profile.total_nnz == a_hat.nnz
    assert profile.total_macs == a_hat.nnz * WIDTH
    dense_tiles = [t for t in profile.tiles if t.owner != "sparse"]
    sparse_tiles = [t for t in profile.tiles if t.owner == "sparse"]
    assert sum(t.nnz for t in dense_tiles) == dense.nnz
    assert sum(t.nnz for t in sparse_tiles) == sparse.nnz
    # Dense blocks stream COO (8 B/nnz), column runs stream CSC (6 B/nnz).
    assert profile.total_bytes == dense.nnz * 8 + sparse.nnz * 6


def test_profile_owners_follow_layout(layout_case):
    a_hat, layout, b = layout_case
    _, profile = tiled_spmm(a_hat, b, layout)
    chunk_owners = {t.owner for t in profile.tiles if t.owner != "sparse"}
    assert chunk_owners == {
        f"chunk{s.class_id}" for s in layout.spans
    }
    # One tile per subgraph span, plus at least one column run.
    dense_tiles = [t for t in profile.tiles if t.owner != "sparse"]
    assert len(dense_tiles) == layout.num_subgraphs
    assert any(t.owner == "sparse" for t in profile.tiles)


def test_profile_only_matches_executed_profile(layout_case):
    a_hat, layout, b = layout_case
    _, executed = tiled_spmm(a_hat, b, layout)
    accounted = layout_tile_profile(a_hat, layout, WIDTH)
    assert accounted == executed


def test_chunk_balance_bounds(layout_case):
    a_hat, layout, b = layout_case
    _, profile = tiled_spmm(a_hat, b, layout)
    assert 0.0 < profile.chunk_balance() <= 1.0
    assert profile.macs_by_owner()["sparse"] > 0


def test_backend_spmm_layout_entry_point(layout_case):
    a_hat, layout, b = layout_case
    backend = get_backend("tiled")
    assert isinstance(backend, TiledBackend)
    out, profile = backend.spmm_layout(a_hat, b, layout)
    direct, _ = tiled_spmm(a_hat, b, layout)
    np.testing.assert_array_equal(out, direct)
    assert profile.total_nnz == a_hat.nnz


def test_tiled_spmm_accepts_containers(layout_case):
    a_hat, layout, b = layout_case
    for fmt in ("csr", "csc"):
        out, profile = tiled_spmm(from_scipy(a_hat, fmt), b, layout)
        direct, _ = tiled_spmm(a_hat, b, layout)
        np.testing.assert_allclose(out, direct, atol=1e-12, rtol=1e-12)
        assert profile.total_nnz == a_hat.nnz


def test_tiled_spmm_rejects_rectangular(layout_case):
    _, layout, b = layout_case
    rect = sp.random(10, 7, density=0.3, random_state=0, format="csr")
    with pytest.raises(ShapeError):
        tiled_spmm(rect, np.zeros((7, 2)), layout)


def test_small_tile_columns_same_totals(layout_case):
    a_hat, layout, b = layout_case
    out_small, prof_small = tiled_spmm(a_hat, b, layout, tile_columns=17)
    out_big, prof_big = tiled_spmm(a_hat, b, layout, tile_columns=100000)
    np.testing.assert_allclose(out_small, out_big, atol=1e-12, rtol=1e-12)
    assert prof_small.total_nnz == prof_big.total_nnz
    assert prof_small.total_bytes == prof_big.total_bytes
    assert len(prof_small.tiles) > len(prof_big.tiles)
