"""Utility tests: RNG plumbing, tables, ASCII plots."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils import bar_chart, density_plot, ensure_rng, format_table
from repro.utils.rng import spawn


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_from_int_deterministic():
    assert ensure_rng(5).random() == ensure_rng(5).random()


def test_ensure_rng_none():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_children_independent():
    parent = ensure_rng(0)
    children = spawn(parent, 3)
    values = [c.random() for c in children]
    assert len(set(values)) == 3


def test_format_table_alignment():
    text = format_table(("a", "bb"), [(1, 2.5), (30, 4.0)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_float_fmt():
    text = format_table(("x",), [(1.23456,)], float_fmt=".1f")
    assert "1.2" in text


def test_density_plot_shows_diagonal():
    n = 100
    adj = sp.eye(n, format="csr")
    plot = density_plot(adj, size=10)
    lines = plot.splitlines()
    assert len(lines) == 10
    # every diagonal cell is non-blank
    assert all(line[i] != " " for i, line in enumerate(lines))


def test_density_plot_empty_matrix():
    plot = density_plot(sp.csr_matrix((50, 50)), size=5)
    assert set(plot.replace("\n", "")) <= {" "}


def test_density_plot_boundaries_marked():
    adj = sp.eye(40, format="csr")
    plot = density_plot(adj, size=8, class_bounds=[20])
    assert "|" in plot


def test_bar_chart_log_scaling():
    text = bar_chart(["a", "b"], [1.0, 1000.0], width=20)
    a_len = text.splitlines()[0].count("#")
    b_len = text.splitlines()[1].count("#")
    assert b_len > a_len
    assert b_len <= 21


def test_bar_chart_rejects_mismatch():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_bar_chart_empty():
    assert bar_chart([], [], title="t") == "t"
