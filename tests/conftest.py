"""Shared fixtures: small graphs and expensive session-scoped pipeline runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithm import GCoDConfig, run_gcod
from repro.graphs import Graph, powerlaw_community_graph
from repro.partition import partition_graph


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """~120-node power-law community graph; fast enough for any test."""
    return powerlaw_community_graph(
        num_nodes=120,
        avg_degree=6.0,
        num_features=40,
        num_classes=4,
        name="tiny",
        rng=7,
    )


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """~400-node graph for tests that need non-trivial structure."""
    return powerlaw_community_graph(
        num_nodes=400,
        avg_degree=8.0,
        num_features=64,
        num_classes=5,
        name="small",
        rng=11,
    )


@pytest.fixture(scope="session")
def partitioned(small_graph):
    """(reordered graph, layout) from GCoD Step 1 on the small graph."""
    return partition_graph(
        small_graph, num_classes=2, num_groups=2, num_subgraphs=6, rng=3
    )


@pytest.fixture(scope="session")
def fast_config() -> GCoDConfig:
    """A GCoD config small enough to run in test time."""
    return GCoDConfig(
        pretrain_epochs=20,
        retrain_epochs=12,
        admm_iterations=2,
        admm_inner_steps=5,
        num_subgraphs=6,
        seed=1,
    )


@pytest.fixture(scope="session")
def gcod_result(small_graph, fast_config):
    """A full (fast) GCoD pipeline run, shared across the suite."""
    return run_gcod(small_graph, "gcn", fast_config)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
