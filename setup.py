"""Setuptools shim.

The sandboxed environment has no network and no ``wheel`` package, so PEP 517
editable installs fail; this shim lets ``pip install -e . --no-use-pep517``
(and plain ``pip install -e .`` on modern toolchains) work everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
